//! Convolution schedule (implementation) descriptions and the search space over them.
//!
//! A *schedule* captures the implementation decisions an optimized convolution kernel
//! makes: loop tiling along output channels/rows/columns, input-channel blocking, and the
//! thread count. Library implementations ship a fixed set of schedules; the autotuner
//! searches this space per layer and per resolution (§VI of the paper).

use serde::{Deserialize, Serialize};

use rescnn_models::ConvLayerShape;

use crate::profile::CpuProfile;

/// One concrete convolution implementation choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvSchedule {
    /// Output-channel tile (register/cache blocking along OC).
    pub tile_oc: usize,
    /// Output-row tile.
    pub tile_oh: usize,
    /// Output-column tile (the vectorized dimension).
    pub tile_ow: usize,
    /// Input-channel blocking.
    pub tile_ic: usize,
    /// Number of worker threads.
    pub threads: usize,
}

impl ConvSchedule {
    /// A conservative default schedule (what a naive implementation would do).
    pub fn naive(profile: &CpuProfile) -> Self {
        ConvSchedule {
            tile_oc: 8,
            tile_oh: 1,
            tile_ow: profile.simd_width,
            tile_ic: 32,
            threads: profile.cores,
        }
    }

    /// Clamps the schedule to the layer's actual extents (a tile can never usefully exceed
    /// the loop bound it tiles).
    pub fn clamped_to(&self, layer: &ConvLayerShape) -> Self {
        let out = layer.params.output_shape(layer.input).unwrap_or(layer.input);
        ConvSchedule {
            tile_oc: self.tile_oc.min(layer.params.out_channels).max(1),
            tile_oh: self.tile_oh.min(out.h).max(1),
            tile_ow: self.tile_ow.min(out.w).max(1),
            tile_ic: self.tile_ic.min(layer.params.in_channels).max(1),
            threads: self.threads.max(1),
        }
    }
}

/// The discrete schedule search space for one layer on one CPU.
#[derive(Debug, Clone)]
pub struct ScheduleSpace {
    candidates_oc: Vec<usize>,
    candidates_oh: Vec<usize>,
    candidates_ow: Vec<usize>,
    candidates_ic: Vec<usize>,
    threads: usize,
}

impl ScheduleSpace {
    /// Builds the candidate space for a layer on a CPU.
    ///
    /// Candidate tile extents are powers of two (and the full extent) capped by the layer's
    /// dimensions, mirroring the axis-split candidates used by tensor-program autotuners.
    pub fn for_layer(layer: &ConvLayerShape, profile: &CpuProfile) -> Self {
        let out = layer.params.output_shape(layer.input).unwrap_or(layer.input);
        let pow2_up_to = |limit: usize| -> Vec<usize> {
            let mut v = vec![1usize, 2, 4, 8, 16, 32, 64, 128];
            v.retain(|&x| x <= limit.max(1));
            if !v.contains(&limit) && limit > 0 {
                v.push(limit);
            }
            v
        };
        let simd = profile.simd_width;
        let mut ow: Vec<usize> = vec![simd, 2 * simd, 4 * simd, 8 * simd];
        ow.retain(|&x| x <= out.w.max(1));
        if ow.is_empty() || !ow.contains(&out.w) {
            ow.push(out.w.max(1));
        }
        ScheduleSpace {
            candidates_oc: pow2_up_to(layer.params.out_channels),
            candidates_oh: pow2_up_to(out.h),
            candidates_ow: ow,
            candidates_ic: pow2_up_to(layer.params.in_channels),
            threads: profile.cores,
        }
    }

    /// Number of distinct schedules in the space.
    pub fn len(&self) -> usize {
        self.candidates_oc.len()
            * self.candidates_oh.len()
            * self.candidates_ow.len()
            * self.candidates_ic.len()
    }

    /// Whether the space is empty (never true for valid layers).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the `index`-th schedule (row-major over the candidate lists).
    ///
    /// # Panics
    /// Panics if `index >= self.len()`.
    pub fn schedule(&self, index: usize) -> ConvSchedule {
        assert!(index < self.len(), "schedule index out of range");
        let n_ic = self.candidates_ic.len();
        let n_ow = self.candidates_ow.len();
        let n_oh = self.candidates_oh.len();
        let ic = index % n_ic;
        let ow = (index / n_ic) % n_ow;
        let oh = (index / (n_ic * n_ow)) % n_oh;
        let oc = index / (n_ic * n_ow * n_oh);
        ConvSchedule {
            tile_oc: self.candidates_oc[oc],
            tile_oh: self.candidates_oh[oh],
            tile_ow: self.candidates_ow[ow],
            tile_ic: self.candidates_ic[ic],
            threads: self.threads,
        }
    }

    /// Iterates over every schedule in the space.
    pub fn iter(&self) -> impl Iterator<Item = ConvSchedule> + '_ {
        (0..self.len()).map(|i| self.schedule(i))
    }

    /// Returns the neighbours of a schedule: all schedules that differ in exactly one
    /// tiling dimension by one candidate step. Used by the greedy refinement phase of the
    /// autotuner.
    pub fn neighbours(&self, schedule: ConvSchedule) -> Vec<ConvSchedule> {
        let mut out = Vec::new();
        let push_variants = |values: &[usize], current: usize, out: &mut Vec<usize>| {
            if let Some(pos) = values.iter().position(|&v| v == current) {
                if pos > 0 {
                    out.push(values[pos - 1]);
                }
                if pos + 1 < values.len() {
                    out.push(values[pos + 1]);
                }
            } else if let Some(&first) = values.first() {
                out.push(first);
            }
        };
        let mut oc_vars = Vec::new();
        push_variants(&self.candidates_oc, schedule.tile_oc, &mut oc_vars);
        for v in oc_vars {
            out.push(ConvSchedule { tile_oc: v, ..schedule });
        }
        let mut oh_vars = Vec::new();
        push_variants(&self.candidates_oh, schedule.tile_oh, &mut oh_vars);
        for v in oh_vars {
            out.push(ConvSchedule { tile_oh: v, ..schedule });
        }
        let mut ow_vars = Vec::new();
        push_variants(&self.candidates_ow, schedule.tile_ow, &mut ow_vars);
        for v in ow_vars {
            out.push(ConvSchedule { tile_ow: v, ..schedule });
        }
        let mut ic_vars = Vec::new();
        push_variants(&self.candidates_ic, schedule.tile_ic, &mut ic_vars);
        for v in ic_vars {
            out.push(ConvSchedule { tile_ic: v, ..schedule });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescnn_models::ModelKind;

    fn sample_layer(resolution: usize) -> ConvLayerShape {
        ModelKind::ResNet18.arch(10).conv_layers(resolution).unwrap()[5]
    }

    #[test]
    fn space_enumerates_unique_schedules() {
        let layer = sample_layer(224);
        let profile = CpuProfile::intel_4790k();
        let space = ScheduleSpace::for_layer(&layer, &profile);
        assert!(!space.is_empty());
        assert!(space.len() > 50, "space too small: {}", space.len());
        let all: Vec<ConvSchedule> = space.iter().collect();
        assert_eq!(all.len(), space.len());
        let mut dedup = all.clone();
        dedup.sort_by_key(|s| (s.tile_oc, s.tile_oh, s.tile_ow, s.tile_ic));
        dedup.dedup();
        assert_eq!(dedup.len(), all.len(), "duplicate schedules in space");
    }

    #[test]
    fn schedules_respect_layer_bounds() {
        let layer = sample_layer(112);
        let out = layer.params.output_shape(layer.input).unwrap();
        let profile = CpuProfile::amd_2990wx();
        let space = ScheduleSpace::for_layer(&layer, &profile);
        for s in space.iter() {
            let c = s.clamped_to(&layer);
            assert!(c.tile_oc <= layer.params.out_channels);
            assert!(c.tile_oh <= out.h);
            assert!(c.tile_ow <= out.w);
            assert!(c.tile_ic <= layer.params.in_channels);
            assert_eq!(c.threads, profile.cores);
        }
    }

    #[test]
    fn neighbours_differ_in_one_dimension() {
        let layer = sample_layer(224);
        let profile = CpuProfile::intel_4790k();
        let space = ScheduleSpace::for_layer(&layer, &profile);
        let s = space.schedule(space.len() / 2);
        let neighbours = space.neighbours(s);
        assert!(!neighbours.is_empty());
        for n in neighbours {
            let diffs = usize::from(n.tile_oc != s.tile_oc)
                + usize::from(n.tile_oh != s.tile_oh)
                + usize::from(n.tile_ow != s.tile_ow)
                + usize::from(n.tile_ic != s.tile_ic);
            assert_eq!(diffs, 1, "{n:?} vs {s:?}");
        }
    }

    #[test]
    fn naive_schedule_is_valid() {
        let profile = CpuProfile::intel_4790k();
        let s = ConvSchedule::naive(&profile);
        assert_eq!(s.threads, 4);
        assert_eq!(s.tile_ow, 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let layer = sample_layer(112);
        let space = ScheduleSpace::for_layer(&layer, &CpuProfile::intel_4790k());
        let _ = space.schedule(space.len());
    }
}
