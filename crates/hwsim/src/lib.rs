//! # rescnn-hwsim
//!
//! CPU hardware modelling and convolution-kernel autotuning: the substrate behind the
//! paper's §VI and the Figure 7 / Table II experiments. It contains
//!
//! * [`CpuProfile`]s for the two platforms the paper measures (Intel 4790K, AMD 2990WX),
//! * a [`ConvSchedule`] space describing kernel implementation choices,
//! * an analytic [`CostModel`] capturing the resolution-dependent utilization effects,
//! * an [`AutoTuner`] that searches the space per layer (the stand-in for AutoTVM),
//! * a [`LibraryKernels`] baseline modelling a shape-overfitted vendor library (MKLDNN), and
//! * a [`MeasuredTuner`] that sweeps the *executable* engine kernels from
//!   `rescnn-tensor` (algorithm × tiling × threads, the Winograd arm included)
//!   with host wall-clock time, and
//! * a [`CalibratedCostModel`] that folds those measurements back into the
//!   analytic model and exports the measured-fastest algorithm per shape as the
//!   dispatch table `rescnn_tensor::conv2d_dispatch` consults — persistable to
//!   disk so serving starts warm.
//!
//! # Examples
//! ```
//! use rescnn_hwsim::{AutoTuner, CpuProfile, LibraryKernels, TunerConfig};
//! use rescnn_models::ModelKind;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let profile = CpuProfile::intel_4790k();
//! let arch = ModelKind::ResNet18.arch(1000);
//! let tuned = AutoTuner::new(TunerConfig::default()).tune_network(&arch, 112, &profile)?;
//! let library = LibraryKernels::mkldnn_like().plan(&arch, 112, &profile)?;
//! // Resolution-specialized kernels beat the library implementation (Figure 7).
//! assert!(tuned.latency_ms() < library.latency_ms());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod autotune;
mod calibrated;
mod cost;
mod error;
mod library;
mod measured;
mod profile;
mod schedule;

pub use autotune::{AutoTuner, KernelPlan, TunedKernel, TunerConfig};
pub use calibrated::{CalibratedCostModel, SkippedCalibration};
pub use cost::{CostModel, KernelEstimate};
pub use error::{HwError, Result};
pub use library::{LibraryConfig, LibraryKernels};
pub use measured::{MeasuredKernel, MeasuredSweepConfig, MeasuredTuner};
pub use profile::CpuProfile;
pub use schedule::{ConvSchedule, ScheduleSpace};

/// Commonly used items, intended for glob import.
pub mod prelude {
    pub use crate::{
        AutoTuner, CalibratedCostModel, ConvSchedule, CostModel, CpuProfile, HwError,
        KernelEstimate, KernelPlan, LibraryKernels, MeasuredTuner, TunerConfig,
    };
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rescnn_models::ModelKind;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn any_schedule_estimate_is_sane(layer_idx in 0usize..20, sched_seed in 0u64..1000) {
            let profile = CpuProfile::intel_4790k();
            let arch = ModelKind::ResNet18.arch(1000);
            let layers = arch.conv_layers(224).unwrap();
            let layer = layers[layer_idx % layers.len()];
            let space = ScheduleSpace::for_layer(&layer, &profile);
            let schedule = space.schedule((sched_seed as usize) % space.len());
            let est = CostModel::new().estimate(&layer, schedule, &profile);
            prop_assert!(est.seconds.is_finite() && est.seconds > 0.0);
            prop_assert!(est.utilization <= 1.0);
            prop_assert!(est.seconds >= est.overhead_seconds);
            prop_assert!(est.seconds + 1e-12 >= est.compute_seconds.min(est.memory_seconds));
        }

        #[test]
        fn tuned_latency_monotone_under_macs(res_idx in 0usize..6) {
            let resolutions = [112usize, 168, 224, 280, 336, 392, 448];
            let res_lo = resolutions[res_idx];
            let res_hi = resolutions[res_idx + 1];
            let profile = CpuProfile::amd_2990wx();
            let arch = ModelKind::ResNet18.arch(1000);
            let tuner = AutoTuner::new(TunerConfig { trials: 32, refine_rounds: 2, seed: 1 });
            let lo = tuner.tune_network(&arch, res_lo, &profile).unwrap();
            let hi = tuner.tune_network(&arch, res_hi, &profile).unwrap();
            prop_assert!(hi.latency_ms() > lo.latency_ms());
        }
    }
}
