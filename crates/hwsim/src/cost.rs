//! Analytic convolution-kernel cost model.
//!
//! The model estimates wall-clock time for one convolution layer executed with a given
//! [`ConvSchedule`] on a given [`CpuProfile`]. It is a roofline-style model refined with
//! the structural utilization effects that make kernel performance *resolution dependent*
//! — exactly the effects the paper's §VI attributes the library/tuned gap to:
//!
//! * vector-lane waste when the output width does not fill SIMD registers,
//! * register-blocking ILP that needs enough independent accumulators (output channels),
//! * short reduction loops (1×1 and depthwise convolutions) that cannot amortize loop
//!   overhead,
//! * thread-level load imbalance when there are too few tiles to fill all cores,
//! * cache pressure when a tile's working set spills out of L1/L2,
//! * per-layer launch overhead that dominates tiny layers.

use serde::{Deserialize, Serialize};

use rescnn_models::ConvLayerShape;

use crate::profile::CpuProfile;
use crate::schedule::ConvSchedule;

/// Estimated execution characteristics of one convolution layer under one schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelEstimate {
    /// Estimated wall-clock seconds.
    pub seconds: f64,
    /// Multiply–accumulate count of the layer.
    pub macs: u64,
    /// Estimated bytes moved to/from DRAM.
    pub bytes_moved: u64,
    /// Compute-bound time component (seconds).
    pub compute_seconds: f64,
    /// Memory-bound time component (seconds).
    pub memory_seconds: f64,
    /// Fixed overhead component (seconds).
    pub overhead_seconds: f64,
    /// Achieved fraction of the CPU's attainable peak MAC throughput.
    pub utilization: f64,
}

impl KernelEstimate {
    /// Achieved MAC throughput in GMAC/s (the paper's "GFLOPs/s" axis in Figure 7).
    pub fn gmacs_per_s(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.macs as f64 / self.seconds / 1e9
        }
    }
}

/// Tunable constants of the cost model (exposed so the ablation benches can perturb them).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Per-tile dispatch overhead in nanoseconds.
    pub per_task_overhead_ns: f64,
    /// Fraction of repeated input reads served from the last-level cache when the whole
    /// input fits.
    pub llc_reuse: f64,
    /// Whether weights arrive prepacked in GEMM panel layout (the engine's
    /// serving default since the `PreparedLayer` path): when `false`, every
    /// call pays a per-weight-element repacking pass, modelled as
    /// [`CostModel::weight_pack_ns_per_elem`] of extra overhead.
    pub prepacked_weights: bool,
    /// Cost of packing one weight element into panel layout (read + strided
    /// write, cache-friendly), in nanoseconds. Only charged when
    /// [`CostModel::prepacked_weights`] is `false`.
    pub weight_pack_ns_per_elem: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            per_task_overhead_ns: 150.0,
            llc_reuse: 0.5,
            prepacked_weights: true,
            weight_pack_ns_per_elem: 0.4,
        }
    }
}

impl CostModel {
    /// Creates the default cost model.
    pub fn new() -> Self {
        Self::default()
    }

    /// A model of the legacy pack-per-call execution stage (weights repacked on
    /// every forward), for before/after comparisons against the prepacked
    /// default.
    pub fn with_per_call_packing(mut self) -> Self {
        self.prepacked_weights = false;
        self
    }

    /// Estimates the execution of `layer` with `schedule` on `profile`.
    pub fn estimate(
        &self,
        layer: &ConvLayerShape,
        schedule: ConvSchedule,
        profile: &CpuProfile,
    ) -> KernelEstimate {
        let s = schedule.clamped_to(layer);
        let params = layer.params;
        let out = params.output_shape(layer.input).unwrap_or(layer.input);
        let macs = layer.macs();
        let simd = profile.simd_width.max(1);

        // --- Vector utilization along the output width -------------------------------
        let full_tiles = out.w / s.tile_ow;
        let rem = out.w % s.tile_ow;
        let mut padded_cols = full_tiles * s.tile_ow.div_ceil(simd) * simd;
        if rem > 0 {
            padded_cols += rem.div_ceil(simd) * simd;
        }
        // Remainder columns are not a total loss: real kernels fall back to masked or
        // scalar epilogues, so blend the raw lane utilization towards one.
        let raw_vec_util = out.w as f64 / padded_cols.max(1) as f64;
        let vec_util = 0.45 + 0.55 * raw_vec_util;

        // --- Instruction-level parallelism from register blocking --------------------
        let acc = s.tile_oc.min(16) as f64;
        let ilp = (0.45 + 0.55 * (acc / 16.0).sqrt()).min(1.0);

        // --- Reduction-length amortization (depthwise / 1×1 penalty) -----------------
        let reduction = (params.in_channels / params.groups * params.kernel * params.kernel) as f64;
        let reduction_factor = reduction / (reduction + 16.0);

        // --- Thread-level load balance ------------------------------------------------
        let threads = s.threads.min(profile.cores).max(1);
        let tasks = params.out_channels.div_ceil(s.tile_oc) * out.h.div_ceil(s.tile_oh);
        let rounds = tasks.div_ceil(threads);
        let balance = tasks as f64 / (rounds * threads) as f64;

        // --- Cache behaviour of one tile ----------------------------------------------
        let weight_tile_bytes =
            s.tile_oc * (params.in_channels / params.groups) * params.kernel * params.kernel * 4;
        let input_tile_bytes = (s.tile_oh * params.stride + params.kernel)
            * (s.tile_ow * params.stride + params.kernel)
            * s.tile_ic.min(params.in_channels)
            * 4;
        let output_tile_bytes = s.tile_oc * s.tile_oh * s.tile_ow * 4;
        let working_set = weight_tile_bytes + input_tile_bytes + output_tile_bytes;
        let cache_factor = if working_set <= profile.l1_bytes() {
            1.0
        } else if working_set <= profile.l2_bytes() {
            0.92
        } else if working_set <= profile.llc_mib * 1024 * 1024 / profile.cores.max(1) {
            0.80
        } else {
            0.62
        };

        let utilization =
            (vec_util * ilp * reduction_factor * balance * cache_factor).clamp(0.0, 1.0);
        let thread_fraction = threads as f64 / profile.cores as f64;
        let effective_rate = profile.attainable_macs_per_s() * thread_fraction * utilization;
        let compute_seconds = macs as f64 / effective_rate.max(1.0);

        // --- DRAM traffic ---------------------------------------------------------------
        let input_bytes = (layer.input.volume() * 4) as f64;
        let weight_bytes = (params.weight_count() * 4) as f64;
        let output_bytes = (out.volume() * 4) as f64;
        let oc_passes = params.out_channels.div_ceil(s.tile_oc) as f64;
        let llc_bytes = (profile.llc_mib * 1024 * 1024) as f64;
        let effective_input_reads = if input_bytes <= llc_bytes {
            input_bytes
        } else {
            input_bytes * (1.0 + (oc_passes - 1.0) * self.llc_reuse)
        };
        let bytes_moved = weight_bytes + effective_input_reads + output_bytes;
        let memory_seconds = bytes_moved / profile.dram_bytes_per_s();

        // --- Fixed overheads -------------------------------------------------------------
        // Per-call weight repacking (absent when weights are prepacked at model
        // load): one pass over the weight elements, parallel across threads.
        let pack_seconds = if self.prepacked_weights {
            0.0
        } else {
            params.weight_count() as f64 * self.weight_pack_ns_per_elem * 1e-9 / threads as f64
        };
        let overhead_seconds = profile.launch_overhead_us * 1e-6
            + tasks as f64 * self.per_task_overhead_ns * 1e-9 / threads as f64
            + pack_seconds;

        let seconds = compute_seconds.max(memory_seconds) + overhead_seconds;
        let achieved_util = macs as f64 / seconds / profile.attainable_macs_per_s();

        KernelEstimate {
            seconds,
            macs,
            bytes_moved: bytes_moved as u64,
            compute_seconds,
            memory_seconds,
            overhead_seconds,
            utilization: achieved_util.clamp(0.0, 1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ScheduleSpace;
    use rescnn_models::ModelKind;

    fn layers(resolution: usize) -> Vec<ConvLayerShape> {
        ModelKind::ResNet50.arch(1000).conv_layers(resolution).unwrap()
    }

    fn best_estimate(layer: &ConvLayerShape, profile: &CpuProfile) -> KernelEstimate {
        let model = CostModel::new();
        let space = ScheduleSpace::for_layer(layer, profile);
        space
            .iter()
            .map(|s| model.estimate(layer, s, profile))
            .min_by(|a, b| a.seconds.partial_cmp(&b.seconds).unwrap())
            .unwrap()
    }

    #[test]
    fn estimates_are_positive_and_finite() {
        let model = CostModel::new();
        let profile = CpuProfile::intel_4790k();
        for layer in layers(224) {
            let s = ConvSchedule::naive(&profile);
            let est = model.estimate(&layer, s, &profile);
            assert!(est.seconds.is_finite() && est.seconds > 0.0);
            assert!(est.utilization >= 0.0 && est.utilization <= 1.0);
            assert!(est.gmacs_per_s() >= 0.0);
            assert!(est.bytes_moved > 0);
            assert!(est.overhead_seconds > 0.0);
        }
    }

    #[test]
    fn more_macs_never_cheaper_under_same_schedule() {
        let model = CostModel::new();
        let profile = CpuProfile::intel_4790k();
        let small = layers(112);
        let large = layers(224);
        let schedule = ConvSchedule::naive(&profile);
        for (a, b) in small.iter().zip(&large) {
            let ta = model.estimate(a, schedule, &profile).seconds;
            let tb = model.estimate(b, schedule, &profile).seconds;
            assert!(tb >= ta * 0.99, "layer got cheaper with 4x the work: {ta} vs {tb}");
        }
    }

    #[test]
    fn tuned_schedules_beat_naive() {
        let profile = CpuProfile::intel_4790k();
        let model = CostModel::new();
        for layer in layers(224).into_iter().step_by(7) {
            let naive = model.estimate(&layer, ConvSchedule::naive(&profile), &profile);
            let best = best_estimate(&layer, &profile);
            assert!(best.seconds <= naive.seconds + 1e-12);
        }
    }

    #[test]
    fn utilization_grows_with_resolution_for_best_schedules() {
        // Aggregate over the whole network: higher resolutions keep the SIMD lanes and
        // cores busier (the central premise of Figure 7).
        let profile = CpuProfile::intel_4790k();
        let total = |res: usize| -> (f64, f64) {
            let mut macs = 0.0;
            let mut secs = 0.0;
            for layer in layers(res) {
                let est = best_estimate(&layer, &profile);
                macs += est.macs as f64;
                secs += est.seconds;
            }
            (macs, secs)
        };
        let (macs_low, secs_low) = total(112);
        let (macs_high, secs_high) = total(448);
        let tput_low = macs_low / secs_low;
        let tput_high = macs_high / secs_high;
        assert!(
            tput_high > tput_low,
            "throughput should rise with resolution: {tput_low:.3e} vs {tput_high:.3e}"
        );
    }

    #[test]
    fn thirty_two_cores_beat_four_cores_on_large_layers() {
        let intel = CpuProfile::intel_4790k();
        let amd = CpuProfile::amd_2990wx();
        let layer = layers(448)[10];
        let best_intel = best_estimate(&layer, &intel);
        let best_amd = best_estimate(&layer, &amd);
        assert!(best_amd.seconds < best_intel.seconds);
    }

    #[test]
    fn per_call_packing_costs_more_than_prepacked() {
        let profile = CpuProfile::intel_4790k();
        let prepacked = CostModel::new();
        assert!(prepacked.prepacked_weights);
        let legacy = CostModel::new().with_per_call_packing();
        let schedule = ConvSchedule::naive(&profile);
        for layer in layers(224).into_iter().step_by(5) {
            let fast = prepacked.estimate(&layer, schedule, &profile);
            let slow = legacy.estimate(&layer, schedule, &profile);
            assert!(
                slow.seconds > fast.seconds,
                "repacking weights every call must cost extra: {} vs {}",
                slow.seconds,
                fast.seconds
            );
            assert!(slow.overhead_seconds > fast.overhead_seconds);
        }
    }

    #[test]
    fn memory_bound_layers_report_memory_dominance() {
        // A 1×1 convolution with huge channel counts at tiny spatial extent moves a lot of
        // weight bytes per MAC.
        let profile = CpuProfile::intel_4790k();
        let model = CostModel::new();
        let layer = layers(112).last().copied().unwrap();
        let est = model.estimate(&layer, ConvSchedule::naive(&profile), &profile);
        assert!(est.memory_seconds > 0.0);
        assert!(est.compute_seconds > 0.0);
    }
}
