//! Schedule autotuning and whole-network kernel plans.
//!
//! Mirrors the role AutoTVM/Ansor play in the paper (§VI): for every convolution layer at
//! every inference resolution, search the schedule space for the implementation the cost
//! model predicts to be fastest. Identical layer shapes share one tuning result, as a real
//! tuning cache would.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use rescnn_models::{ArchSpec, ConvLayerShape, ModelKind};

use crate::cost::{CostModel, KernelEstimate};
use crate::error::{HwError, Result};
use crate::profile::CpuProfile;
use crate::schedule::{ConvSchedule, ScheduleSpace};

/// Configuration of the autotuning search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TunerConfig {
    /// Number of random candidates evaluated per layer.
    pub trials: usize,
    /// Greedy hill-climbing rounds applied to the best random candidate.
    pub refine_rounds: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig { trials: 96, refine_rounds: 4, seed: 0 }
    }
}

impl TunerConfig {
    /// A deliberately tiny budget, used by ablation benchmarks to show the effect of
    /// under-tuning.
    pub fn minimal() -> Self {
        TunerConfig { trials: 4, refine_rounds: 0, seed: 0 }
    }
}

/// The tuning result for a single layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TunedKernel {
    /// The layer this kernel implements.
    pub layer: ConvLayerShape,
    /// The chosen schedule.
    pub schedule: ConvSchedule,
    /// The cost-model estimate under that schedule.
    pub estimate: KernelEstimate,
}

/// A complete per-layer kernel selection for one model at one resolution on one CPU.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelPlan {
    /// Model family.
    pub model: ModelKind,
    /// Inference resolution the plan was built for.
    pub resolution: usize,
    /// CPU the plan targets.
    pub cpu: String,
    /// Whether the plan came from autotuning (`true`) or the library baseline (`false`).
    pub tuned: bool,
    /// Per-layer kernels, in network order.
    pub kernels: Vec<TunedKernel>,
}

impl KernelPlan {
    /// Total multiply–accumulate count of the plan's convolution layers.
    pub fn total_macs(&self) -> u64 {
        self.kernels.iter().map(|k| k.estimate.macs).sum()
    }

    /// Estimated end-to-end convolution latency in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.kernels.iter().map(|k| k.estimate.seconds).sum()
    }

    /// Estimated latency in milliseconds (the unit of Table II).
    pub fn latency_ms(&self) -> f64 {
        self.total_seconds() * 1e3
    }

    /// Aggregate throughput in GMAC/s (the y-axis of Figure 7, which the paper labels
    /// GFLOPs/s under its MAC-counting convention).
    pub fn throughput_gmacs(&self) -> f64 {
        let secs = self.total_seconds();
        if secs <= 0.0 {
            0.0
        } else {
            self.total_macs() as f64 / secs / 1e9
        }
    }

    /// Estimated DRAM traffic in bytes.
    pub fn total_bytes_moved(&self) -> u64 {
        self.kernels.iter().map(|k| k.estimate.bytes_moved).sum()
    }
}

/// The schedule autotuner.
#[derive(Debug, Clone, Default)]
pub struct AutoTuner {
    config: TunerConfig,
    cost: CostModel,
}

impl AutoTuner {
    /// Creates a tuner with the given search configuration and the default cost model.
    pub fn new(config: TunerConfig) -> Self {
        AutoTuner { config, cost: CostModel::new() }
    }

    /// Creates a tuner with an explicit cost model (used by ablations).
    pub fn with_cost_model(config: TunerConfig, cost: CostModel) -> Self {
        AutoTuner { config, cost }
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Tunes a single layer, returning the best schedule found.
    pub fn tune_layer(&self, layer: &ConvLayerShape, profile: &CpuProfile) -> TunedKernel {
        let space = ScheduleSpace::for_layer(layer, profile);
        let mut rng = StdRng::seed_from_u64(
            self.config.seed ^ (layer.macs().wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        let mut best_schedule = ConvSchedule::naive(profile);
        let mut best = self.cost.estimate(layer, best_schedule, profile);

        // Random search phase.
        let trials = self.config.trials.min(space.len()).max(1);
        for _ in 0..trials {
            let candidate = space.schedule(rng.gen_range(0..space.len()));
            let est = self.cost.estimate(layer, candidate, profile);
            if est.seconds < best.seconds {
                best = est;
                best_schedule = candidate;
            }
        }
        // Greedy refinement phase.
        for _ in 0..self.config.refine_rounds {
            let mut improved = false;
            for neighbour in space.neighbours(best_schedule) {
                let est = self.cost.estimate(layer, neighbour, profile);
                if est.seconds < best.seconds {
                    best = est;
                    best_schedule = neighbour;
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }
        TunedKernel { layer: *layer, schedule: best_schedule, estimate: best }
    }

    /// Tunes every convolution layer of an architecture at a resolution, reusing results
    /// for repeated layer shapes.
    ///
    /// # Errors
    /// Returns an error if the architecture cannot be instantiated at the resolution.
    pub fn tune_network(
        &self,
        arch: &ArchSpec,
        resolution: usize,
        profile: &CpuProfile,
    ) -> Result<KernelPlan> {
        let layers = arch.conv_layers(resolution).map_err(|e| HwError::Model(e.to_string()))?;
        let mut cache: HashMap<ConvLayerShape, TunedKernel> = HashMap::new();
        let mut kernels = Vec::with_capacity(layers.len());
        for layer in layers {
            let kernel = *cache.entry(layer).or_insert_with(|| self.tune_layer(&layer, profile));
            kernels.push(kernel);
        }
        Ok(KernelPlan {
            model: arch.kind,
            resolution,
            cpu: profile.name.clone(),
            tuned: true,
            kernels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuning_beats_naive_schedule() {
        let profile = CpuProfile::intel_4790k();
        let tuner = AutoTuner::new(TunerConfig::default());
        let cost = CostModel::new();
        let arch = ModelKind::ResNet18.arch(1000);
        for layer in arch.conv_layers(224).unwrap().into_iter().step_by(5) {
            let tuned = tuner.tune_layer(&layer, &profile);
            let naive = cost.estimate(&layer, ConvSchedule::naive(&profile), &profile);
            assert!(tuned.estimate.seconds <= naive.seconds);
        }
    }

    #[test]
    fn bigger_budget_is_no_worse() {
        let profile = CpuProfile::amd_2990wx();
        let arch = ModelKind::ResNet50.arch(1000);
        let layer = arch.conv_layers(224).unwrap()[20];
        let small = AutoTuner::new(TunerConfig::minimal()).tune_layer(&layer, &profile);
        let large = AutoTuner::new(TunerConfig { trials: 256, refine_rounds: 6, seed: 0 })
            .tune_layer(&layer, &profile);
        assert!(large.estimate.seconds <= small.estimate.seconds + 1e-12);
    }

    #[test]
    fn tuning_is_deterministic_for_a_seed() {
        let profile = CpuProfile::intel_4790k();
        let arch = ModelKind::ResNet18.arch(1000);
        let layer = arch.conv_layers(168).unwrap()[7];
        let a = AutoTuner::new(TunerConfig::default()).tune_layer(&layer, &profile);
        let b = AutoTuner::new(TunerConfig::default()).tune_layer(&layer, &profile);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.estimate.seconds, b.estimate.seconds);
    }

    #[test]
    fn network_plan_aggregates() {
        let profile = CpuProfile::intel_4790k();
        let tuner = AutoTuner::new(TunerConfig::default());
        let arch = ModelKind::ResNet18.arch(1000);
        let plan = tuner.tune_network(&arch, 224, &profile).unwrap();
        assert_eq!(plan.kernels.len(), 20);
        assert_eq!(plan.model, ModelKind::ResNet18);
        assert!(plan.tuned);
        assert_eq!(plan.cpu, "4790K");
        assert!(plan.latency_ms() > 1.0 && plan.latency_ms() < 1000.0);
        assert!(plan.throughput_gmacs() > 10.0);
        assert!(plan.total_bytes_moved() > 1_000_000);
        // Plan MACs equal the architecture's conv MACs.
        let conv_macs: u64 = arch.conv_layers(224).unwrap().iter().map(|l| l.macs()).sum();
        assert_eq!(plan.total_macs(), conv_macs);
    }

    #[test]
    fn latency_grows_with_resolution() {
        let profile = CpuProfile::intel_4790k();
        let tuner = AutoTuner::new(TunerConfig::default());
        let arch = ModelKind::ResNet50.arch(1000);
        let mut prev = 0.0;
        for res in [112usize, 224, 448] {
            let plan = tuner.tune_network(&arch, res, &profile).unwrap();
            assert!(plan.latency_ms() > prev);
            prev = plan.latency_ms();
        }
    }
}
