//! Measured (wall-clock) kernel sweeps over the executable engine.
//!
//! The analytic [`CostModel`](crate::CostModel) predicts how schedules behave; this
//! module closes the loop by *running* the real kernels from `rescnn-tensor` and
//! timing them. For every convolution layer shape it sweeps implementation
//! algorithms ([`ConvAlgo`]) — and, for the tiled kernel, tiling configurations —
//! exactly the algorithm × tiling × resolution landscape the paper's §VI autotunes
//! over, but with host wall-clock time instead of a model.

use std::time::Instant;

use serde::{Deserialize, Serialize};

use rescnn_models::ConvLayerShape;
use rescnn_tensor::{
    conv2d_tiled, conv2d_with_algo, int8_unit_error, select_algo, winograd_f4_unit_error, ConvAlgo,
    ConvEpilogue, ConvTiling, EngineContext, PreparedLayer, Shape, Tensor, INT8_TOLERANCE,
    WINOGRAD_F4_TOLERANCE,
};

/// One wall-clock measurement of a kernel implementation on a layer shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasuredKernel {
    /// The algorithm that ran.
    pub algo: ConvAlgo,
    /// Worker-thread count the engine was configured with.
    pub threads: usize,
    /// Best (minimum) seconds per run across the configured repetitions.
    pub seconds: f64,
    /// Achieved GMAC/s.
    pub gmacs_per_s: f64,
}

/// Configuration of the measured sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasuredSweepConfig {
    /// Repetitions per measurement (the minimum is reported).
    pub reps: usize,
    /// Thread counts to sweep.
    pub max_threads: usize,
    /// Random seed for the synthetic activations/weights.
    pub seed: u64,
    /// Time the engine algorithms against prepared layers (weights prepacked
    /// once, output written into a pre-sized buffer) — the steady-state serving
    /// cost, matching how models execute since the `PreparedLayer` path. Set to
    /// `false` to time the legacy pack-per-call entry points instead.
    pub prepack: bool,
    /// Numerical gate for [`ConvAlgo::WinogradF4`]: the sweep only admits the
    /// α=6 transform for a shape when its measured unit-scale deviation from
    /// `Im2colPacked` ([`rescnn_tensor::winograd_f4_unit_error`]) stays within
    /// this bound, so calibration can never trade accuracy it wasn't granted
    /// for speed. Defaults to the characterized
    /// [`rescnn_tensor::WINOGRAD_F4_TOLERANCE`].
    pub f4_tolerance: f32,
    /// Whether the sweep includes the quantized [`ConvAlgo::Int8`] arm.
    /// Defaults to `false`: quantization changes output values, so a
    /// deployment must opt in — mirroring the engine's own policy of never
    /// choosing the arm heuristically.
    pub int8: bool,
    /// Numerical gate for [`ConvAlgo::Int8`]: when the int8 arm is enabled,
    /// the sweep only admits it for a shape whose measured unit-scale
    /// deviation from `Im2colPacked` ([`rescnn_tensor::int8_unit_error`])
    /// stays within this bound. Defaults to the characterized
    /// [`rescnn_tensor::INT8_TOLERANCE`].
    pub int8_tolerance: f32,
}

impl Default for MeasuredSweepConfig {
    fn default() -> Self {
        MeasuredSweepConfig {
            reps: 3,
            max_threads: 1,
            seed: 0,
            prepack: true,
            f4_tolerance: WINOGRAD_F4_TOLERANCE,
            int8: false,
            int8_tolerance: INT8_TOLERANCE,
        }
    }
}

/// Wall-clock kernel sweeper: the measured counterpart of [`AutoTuner`](crate::AutoTuner).
#[derive(Debug, Clone, Default)]
pub struct MeasuredTuner {
    config: MeasuredSweepConfig,
}

impl MeasuredTuner {
    /// Creates a sweeper.
    pub fn new(config: MeasuredSweepConfig) -> Self {
        MeasuredTuner { config }
    }

    fn instantiate(&self, layer: &ConvLayerShape) -> (Tensor, Tensor) {
        let params = &layer.params;
        let input = Tensor::random_uniform(layer.input, 1.0, self.config.seed ^ 0x11);
        let weight = Tensor::random_uniform(
            Shape::new(
                params.out_channels,
                params.in_channels / params.groups,
                params.kernel,
                params.kernel,
            ),
            0.5,
            self.config.seed ^ 0x22,
        );
        (input, weight)
    }

    fn time_runs(&self, mut run: impl FnMut()) -> f64 {
        run(); // warm caches and the scratch arena
               // Minimum over repetitions, not the mean: wall-clock noise on a shared
               // host is strictly additive, so the minimum is the robust estimator of a
               // kernel's true cost — and what keeps calibrated dispatch decisions
               // stable from sweep to sweep.
        let mut best = f64::INFINITY;
        for _ in 0..self.config.reps.max(1) {
            let start = Instant::now();
            run();
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    }

    /// Times one algorithm on one layer at one thread count. If the requested
    /// algorithm cannot execute this shape, the engine's fallback
    /// ([`ConvAlgo::Im2colPacked`]) runs instead and the returned record reports the
    /// algorithm that actually executed, so sweep data is never mislabeled.
    ///
    /// With [`MeasuredSweepConfig::prepack`] (the default) the engine
    /// algorithms are timed through a [`PreparedLayer`]: weights prepacked
    /// once, Winograd's filter transform cached, output written into a
    /// pre-sized buffer. That matches the steady-state serving cost — the model
    /// zoo prepares every layer at construction, so per-call packing (or the
    /// filter transform) is a one-time cost, and folding it into every timed
    /// run would systematically bias calibrated dispatch. The reference
    /// algorithms ([`ConvAlgo::Direct`], [`ConvAlgo::Im2col`]) always run their
    /// historical entry points (the prepared wrapper would add a copy they
    /// never pay in practice).
    pub fn measure_algo(
        &self,
        layer: &ConvLayerShape,
        algo: ConvAlgo,
        threads: usize,
    ) -> MeasuredKernel {
        let algo = if algo.supports(&layer.params) { algo } else { ConvAlgo::Im2colPacked };
        let (input, weight) = self.instantiate(layer);
        let params = layer.params;
        let prepacked = self.config.prepack
            && matches!(
                algo,
                ConvAlgo::Im2colPacked
                    | ConvAlgo::Gemm1x1
                    | ConvAlgo::Depthwise
                    | ConvAlgo::Winograd
                    | ConvAlgo::WinogradF4
                    | ConvAlgo::Int8
            );
        // Scoped override: the sweep's thread count never leaks into (or races
        // with) the process-wide engine configuration.
        let seconds = EngineContext::new().with_threads(threads).scope(|| {
            if prepacked {
                let mut prepared =
                    PreparedLayer::new(weight, None, params).expect("valid layer shape");
                let mut out =
                    Tensor::zeros(params.output_shape(input.shape()).expect("valid layer shape"));
                // Build any cached filter transform (or quantized weights and the
                // calibrated activation range) outside the timed runs: both are
                // one-time preparation costs in steady-state serving.
                if algo == ConvAlgo::Winograd {
                    prepared.winograd_filter().expect("winograd-eligible layer");
                } else if algo == ConvAlgo::WinogradF4 {
                    prepared.winograd_filter_f4().expect("winograd-eligible layer");
                } else if algo == ConvAlgo::Int8 {
                    let (lo, hi) = rescnn_tensor::tensor_range(&input);
                    prepared.set_int8_range(lo, hi);
                    prepared.int8_weights().expect("int8-eligible layer");
                }
                self.time_runs(|| {
                    prepared
                        .forward_with_algo_into(&input, algo, ConvEpilogue::default(), &mut out)
                        .expect("valid layer shape");
                })
            } else {
                self.time_runs(|| {
                    conv2d_with_algo(&input, &weight, None, &params, algo)
                        .expect("valid layer shape");
                })
            }
        });
        MeasuredKernel {
            algo,
            threads,
            seconds,
            gmacs_per_s: layer.macs() as f64 / seconds.max(1e-12) / 1e9,
        }
    }

    /// Sweeps every supported algorithm (at every thread count up to the configured
    /// maximum) over one layer, slowest kernels included — the full measured
    /// algorithm × threads landscape for this shape.
    pub fn sweep_layer(&self, layer: &ConvLayerShape, algos: &[ConvAlgo]) -> Vec<MeasuredKernel> {
        let mut results = Vec::new();
        for &algo in algos {
            if !algo.supports(&layer.params) {
                continue;
            }
            if algo == ConvAlgo::WinogradF4 && !self.admits_f4(layer) {
                continue;
            }
            if algo == ConvAlgo::Int8 && !(self.config.int8 && self.admits_int8(layer)) {
                continue;
            }
            let mut threads = 1;
            while threads <= self.config.max_threads.max(1) {
                results.push(self.measure_algo(layer, algo, threads));
                threads *= 2;
            }
        }
        results
    }

    /// Whether the numerical gate admits [`ConvAlgo::WinogradF4`] for this
    /// layer shape: its deterministic unit-scale deviation from `Im2colPacked`
    /// must stay within [`MeasuredSweepConfig::f4_tolerance`]. Shapes that the
    /// probe cannot evaluate are rejected.
    pub fn admits_f4(&self, layer: &ConvLayerShape) -> bool {
        winograd_f4_unit_error(&layer.params, layer.input)
            .map(|err| err <= self.config.f4_tolerance)
            .unwrap_or(false)
    }

    /// Whether the numerical gate admits [`ConvAlgo::Int8`] for this layer
    /// shape: its deterministic unit-scale deviation from `Im2colPacked`
    /// ([`rescnn_tensor::int8_unit_error`]) must stay within
    /// [`MeasuredSweepConfig::int8_tolerance`]. Shapes the probe cannot
    /// evaluate are rejected. Note the gate is necessary but not sufficient
    /// for the sweep to include the arm: [`MeasuredSweepConfig::int8`] must
    /// also be set, because quantization is a deployment-level opt-in.
    pub fn admits_int8(&self, layer: &ConvLayerShape) -> bool {
        int8_unit_error(&layer.params, layer.input)
            .map(|err| err <= self.config.int8_tolerance)
            .unwrap_or(false)
    }

    /// Times the output-tiled kernel across tiling configurations (dense layers
    /// only): the measured version of the paper's tiling sweep.
    pub fn sweep_tilings(
        &self,
        layer: &ConvLayerShape,
        tilings: &[ConvTiling],
    ) -> Vec<(ConvTiling, f64)> {
        let (input, weight) = self.instantiate(layer);
        let params = layer.params;
        tilings
            .iter()
            .map(|&tiling| {
                let seconds = self.time_runs(|| {
                    conv2d_tiled(&input, &weight, None, &params, tiling)
                        .expect("valid layer shape");
                });
                (tiling, seconds)
            })
            .collect()
    }

    /// The fastest measured kernel for a layer, comparing the engine's automatic
    /// choice against every other supported algorithm.
    pub fn best_kernel(&self, layer: &ConvLayerShape) -> Option<MeasuredKernel> {
        self.sweep_layer(layer, &ConvAlgo::ALL)
            .into_iter()
            .min_by(|a, b| a.seconds.total_cmp(&b.seconds))
    }

    /// What the dispatch layer would choose for this layer (no timing involved).
    pub fn dispatched_algo(&self, layer: &ConvLayerShape) -> ConvAlgo {
        select_algo(&layer.params, layer.input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescnn_models::ModelKind;

    fn small_layer() -> ConvLayerShape {
        let arch = ModelKind::ResNet18.arch(10);
        // A post-stem 3x3 layer at a small resolution keeps the sweep fast.
        arch.conv_layers(32).unwrap()[2]
    }

    #[test]
    fn sweep_covers_supported_algos_and_is_positive() {
        let tuner = MeasuredTuner::new(MeasuredSweepConfig {
            reps: 1,
            max_threads: 2,
            ..Default::default()
        });
        let layer = small_layer();
        let results = tuner.sweep_layer(&layer, &ConvAlgo::ALL);
        assert!(!results.is_empty());
        assert!(results.iter().all(|r| r.seconds > 0.0 && r.gmacs_per_s > 0.0));
        // The dense layer supports the three general algorithms but not the
        // specialized 1x1 / depthwise kernels.
        assert!(results.iter().any(|r| r.algo == ConvAlgo::Im2colPacked));
        assert!(results.iter().all(|r| r.algo != ConvAlgo::Gemm1x1));
        // Thread counts 1 and 2 both appear.
        assert!(results.iter().any(|r| r.threads == 1));
        assert!(results.iter().any(|r| r.threads == 2));
    }

    #[test]
    fn best_kernel_exists_and_dispatch_is_sane() {
        let tuner = MeasuredTuner::new(MeasuredSweepConfig {
            reps: 1,
            max_threads: 1,
            seed: 1,
            ..Default::default()
        });
        let layer = small_layer();
        let best = tuner.best_kernel(&layer).unwrap();
        assert!(best.seconds > 0.0);
        assert_eq!(tuner.dispatched_algo(&layer), ConvAlgo::Im2colPacked);
    }

    #[test]
    fn f4_gate_rejects_shapes_beyond_tolerance() {
        let layer = small_layer();
        // Under the characterized default the small dense stage is admitted…
        let default_tuner = MeasuredTuner::new(MeasuredSweepConfig::default());
        assert!(default_tuner.admits_f4(&layer), "characterized bound admits the ladder shapes");
        // …and with the bound tightened to zero the gate must reject it (the
        // transform genuinely reassociates, so its unit error is nonzero), and
        // the sweep must omit the α=6 arm while keeping F(2×2) in the duel.
        let strict = MeasuredTuner::new(MeasuredSweepConfig {
            reps: 1,
            f4_tolerance: 0.0,
            ..Default::default()
        });
        assert!(!strict.admits_f4(&layer), "a zero tolerance must reject every real shape");
        let swept = strict.sweep_layer(&layer, &ConvAlgo::ALL);
        assert!(swept.iter().all(|r| r.algo != ConvAlgo::WinogradF4));
        assert!(swept.iter().any(|r| r.algo == ConvAlgo::Winograd));
    }

    #[test]
    fn int8_arm_is_opt_in_and_gated() {
        let layer = small_layer();
        // Disabled by default: even when the numerical gate admits the shape,
        // the sweep must omit the quantized arm until a deployment opts in.
        let default_tuner =
            MeasuredTuner::new(MeasuredSweepConfig { reps: 1, ..Default::default() });
        assert!(default_tuner.admits_int8(&layer), "characterized bound admits the ladder shapes");
        let swept = default_tuner.sweep_layer(&layer, &ConvAlgo::ALL);
        assert!(swept.iter().all(|r| r.algo != ConvAlgo::Int8));
        // Opted in, the arm joins the duel…
        let enabled =
            MeasuredTuner::new(MeasuredSweepConfig { reps: 1, int8: true, ..Default::default() });
        let swept = enabled.sweep_layer(&layer, &ConvAlgo::ALL);
        assert!(swept.iter().any(|r| r.algo == ConvAlgo::Int8));
        // …unless the tolerance is tightened past the arm's real unit error.
        let strict = MeasuredTuner::new(MeasuredSweepConfig {
            reps: 1,
            int8: true,
            int8_tolerance: 0.0,
            ..Default::default()
        });
        assert!(!strict.admits_int8(&layer), "a zero tolerance must reject every real shape");
        let swept = strict.sweep_layer(&layer, &ConvAlgo::ALL);
        assert!(swept.iter().all(|r| r.algo != ConvAlgo::Int8));
    }

    #[test]
    fn tiling_sweep_reports_every_configuration() {
        let tuner = MeasuredTuner::new(MeasuredSweepConfig {
            reps: 1,
            max_threads: 1,
            seed: 2,
            ..Default::default()
        });
        let layer = small_layer();
        let tilings = [ConvTiling::new(8, 4, 16), ConvTiling::new(32, 8, 64)];
        let swept = tuner.sweep_tilings(&layer, &tilings);
        assert_eq!(swept.len(), 2);
        assert!(swept.iter().all(|(_, s)| *s > 0.0));
    }
}
