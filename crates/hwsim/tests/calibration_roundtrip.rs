//! The measured-dispatch feedback loop, end to end: sweep real kernels with the
//! `MeasuredTuner`, persist the calibrated cost model to disk, reload it, and
//! verify that installing its dispatch table makes `conv2d_dispatch` pick the
//! measured-fastest algorithm per shape — with explicit overrides still winning.

use rescnn_hwsim::{CalibratedCostModel, CpuProfile, MeasuredSweepConfig, MeasuredTuner};
use rescnn_models::ConvLayerShape;
use rescnn_tensor::{
    conv2d_dispatch, install_algo_calibration, installed_algo_calibration, planned_conv_algo,
    select_algo, Conv2dParams, ConvAlgo, ConvShapeKey, EngineContext, Shape, Tensor,
};

/// Small layers keep the wall-clock sweep fast: one Winograd-eligible 3×3 and
/// one pointwise layer (which Winograd cannot execute).
fn swept_layers() -> Vec<ConvLayerShape> {
    vec![
        ConvLayerShape { params: Conv2dParams::new(8, 8, 3, 1, 1), input: Shape::chw(8, 24, 24) },
        ConvLayerShape { params: Conv2dParams::new(8, 16, 1, 1, 0), input: Shape::chw(8, 24, 24) },
    ]
}

#[test]
fn measured_calibration_round_trips_and_steers_dispatch() {
    let layers = swept_layers();
    let tuner = MeasuredTuner::new(MeasuredSweepConfig {
        reps: 1,
        max_threads: 1,
        seed: 3,
        ..Default::default()
    });
    let mut model = CalibratedCostModel::new(CpuProfile::host());
    model.calibrate_layers(&tuner, &layers);
    assert!(!model.is_empty(), "sweeps must record measurements");
    // Every supported algorithm was measured, Winograd included on the 3×3 layer.
    assert!(model.measured_seconds(&layers[0], ConvAlgo::Winograd).is_some());
    assert!(model.measured_seconds(&layers[0], ConvAlgo::Im2colPacked).is_some());
    assert!(model.measured_seconds(&layers[1], ConvAlgo::Winograd).is_none());
    assert!(model.measured_seconds(&layers[1], ConvAlgo::Gemm1x1).is_some());

    // Persist → reload: measurements and the derived dispatch table survive.
    let path =
        std::env::temp_dir().join(format!("rescnn-hwsim-roundtrip-{}.txt", std::process::id()));
    model.save(&path).unwrap();
    let reloaded = CalibratedCostModel::load(&path, CpuProfile::host()).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(reloaded.len(), model.len());
    assert_eq!(reloaded.dispatch_table(), model.dispatch_table());

    // Install the reloaded table: conv2d_dispatch now runs the measured-fastest
    // algorithm for each swept shape.
    let table = reloaded.dispatch_table();
    let previous = install_algo_calibration(Some(table));
    assert!(previous.is_none());
    assert!(installed_algo_calibration().is_some());

    for layer in &layers {
        let fastest = reloaded.best_algo(layer);
        assert!(fastest.supports(&layer.params));
        assert_eq!(
            select_algo(&layer.params, layer.input),
            fastest,
            "calibrated dispatch must pick the measured-fastest algorithm"
        );
        let input = Tensor::random_uniform(layer.input, 1.0, 11);
        let weight = Tensor::random_uniform(
            Shape::new(
                layer.params.out_channels,
                layer.params.in_channels,
                layer.params.kernel,
                layer.params.kernel,
            ),
            0.5,
            12,
        );
        let (_, ran) = conv2d_dispatch(&input, &weight, None, &layer.params).unwrap();
        assert_eq!(ran, fastest);
    }

    // An uncalibrated shape keeps the static heuristics.
    let unseen = Conv2dParams::new(8, 8, 3, 1, 1);
    let unseen_input = Shape::chw(8, 40, 40);
    assert!(installed_algo_calibration()
        .unwrap()
        .get(&ConvShapeKey::new(unseen, unseen_input))
        .is_none());
    assert_eq!(select_algo(&unseen, unseen_input), ConvAlgo::Im2colPacked);

    // Scoped and process-wide overrides still beat the calibrated default.
    let layer = &layers[0];
    let scoped = EngineContext::new()
        .with_algo(ConvAlgo::Direct)
        .scope(|| planned_conv_algo(&layer.params, layer.input));
    assert_eq!(scoped, ConvAlgo::Direct);
    rescnn_tensor::force_conv_algo(Some(ConvAlgo::Im2col));
    assert_eq!(planned_conv_algo(&layer.params, layer.input), ConvAlgo::Im2col);
    rescnn_tensor::force_conv_algo(None);

    // Uninstall restores heuristic-only dispatch.
    let removed = install_algo_calibration(None);
    assert!(removed.is_some());
    assert!(installed_algo_calibration().is_none());
    assert_eq!(select_algo(&layers[0].params, layers[0].input), ConvAlgo::Im2colPacked);
}
