//! Supervised request-lifecycle policies for the SLO scheduler: bounded
//! retry with resolution demotion, per-source circuit breaking, and watchdog
//! cancellation of runaway executions.
//!
//! The serving layer's recovery story is built from the same lever as its
//! backpressure story — the resolution ladder. A failed attempt is retried
//! *one rung down* (cheaper, therefore likelier to fit the remaining slack,
//! and reading strictly less of a possibly-damaged stream), a misbehaving
//! source is shed at the gate before any decode work is spent, and an
//! execution that would overrun its latency estimate is charged a bounded
//! service time and cooperatively cancelled. Every policy here is driven by
//! the scheduler's deterministic virtual clock — no wall-clock reads — so
//! reports stay bitwise reproducible across thread budgets and reruns.
//!
//! All policies are opt-in (`None` in [`SloOptions`](crate::SloOptions)): a
//! scheduler with no lifecycle policies behaves exactly as before, bit for
//! bit.

use serde::Serialize;

/// Identifies the origin of requests (a client, tenant, or upstream stream)
/// for per-source fault accounting and circuit breaking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct SourceId(pub u64);

/// Bounded re-admission of failed requests with virtual-clock backoff and
/// resolution demotion.
///
/// A request whose plan or execute stage fails (codec error, contained panic,
/// watchdog cancellation) is re-enqueued `max_retries` more times at most.
/// Each retry arrives `backoff_ms · 2^attempt` after the failure on the
/// virtual clock and — when the failure happened *after* planning — is
/// preferentially served **one rung below** the previously-served resolution
/// (bounded by the SSIM floor; the original rung remains the fallback).
/// Injected cost spikes and chaos panics fire only on a request's first
/// attempt (they model transient faults), so retries genuinely recover;
/// deterministic failures (a corrupt stream) exhaust their budget and keep
/// their final error.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RetryPolicy {
    /// Extra attempts allowed beyond the first (0 disables retrying).
    pub max_retries: usize,
    /// Base virtual-clock backoff before the first retry, in milliseconds;
    /// doubles per subsequent attempt.
    pub backoff_ms: f64,
    /// Whether a retry of an executed-and-failed attempt steps one rung down
    /// the resolution ladder (the default).
    pub demote_on_retry: bool,
}

impl RetryPolicy {
    /// A policy allowing `max_retries` extra attempts with a 1 ms base
    /// backoff and demotion enabled.
    pub fn new(max_retries: usize) -> Self {
        RetryPolicy { max_retries, backoff_ms: 1.0, demote_on_retry: true }
    }

    /// Sets the base backoff (clamped to ≥ 0).
    pub fn with_backoff_ms(mut self, backoff_ms: f64) -> Self {
        self.backoff_ms = backoff_ms.max(0.0);
        self
    }

    /// Disables resolution demotion on retry (retries stay at the rung that
    /// failed).
    pub fn without_demotion(mut self) -> Self {
        self.demote_on_retry = false;
        self
    }

    /// Virtual milliseconds to wait after the failure of 0-based `attempt`
    /// before re-admitting: exponential, `backoff_ms · 2^attempt`.
    pub fn backoff_for(&self, attempt: usize) -> f64 {
        self.backoff_ms * (1u64 << attempt.min(32)) as f64
    }
}

/// Per-[`SourceId`] circuit-breaker policy: repeated failures from one source
/// trip an open state that sheds that source's requests *at the gate* — before
/// any decode or plan compute is spent — until a cooldown elapses and a single
/// half-open probe is admitted to test recovery.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CircuitBreakerPolicy {
    /// Consecutive failures from one source that trip its breaker (min 1).
    pub failure_threshold: usize,
    /// Virtual milliseconds the breaker stays open before admitting a probe.
    pub cooldown_ms: f64,
}

impl CircuitBreakerPolicy {
    /// A policy tripping after `failure_threshold` consecutive failures and
    /// cooling down for `cooldown_ms` virtual milliseconds.
    pub fn new(failure_threshold: usize, cooldown_ms: f64) -> Self {
        CircuitBreakerPolicy {
            failure_threshold: failure_threshold.max(1),
            cooldown_ms: cooldown_ms.max(0.0),
        }
    }
}

/// The three states of one source's breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum BreakerState {
    /// Healthy: requests pass the gate.
    Closed,
    /// Tripped: requests are shed until the cooldown elapses.
    Open,
    /// Cooldown elapsed and a probe request was admitted; its outcome decides
    /// (success closes the breaker, failure re-opens it). Further arrivals are
    /// shed while the probe is outstanding.
    HalfOpen,
}

/// Deterministic per-source circuit breaker, driven by the scheduler's
/// virtual clock.
///
/// Transitions: `Closed` —(threshold consecutive failures at time *t*)→
/// `Open(until t + cooldown)` —(arrival ≥ open-until admits a probe)→
/// `HalfOpen` —(probe success)→ `Closed`, or —(probe failure)→ `Open` again.
/// Failures are fed from both the plan stage (inline, in arrival order — a
/// corrupt-stream source trips mid-round) and the execute stage (at each
/// round's end, in admission order), timestamped on the virtual clock, so the
/// whole state history is a pure function of the workload.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    policy: CircuitBreakerPolicy,
    state: BreakerState,
    consecutive_failures: usize,
    open_until_ms: f64,
    trips: usize,
}

impl CircuitBreaker {
    /// A closed breaker under `policy`.
    pub fn new(policy: CircuitBreakerPolicy) -> Self {
        CircuitBreaker {
            policy,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            open_until_ms: 0.0,
            trips: 0,
        }
    }

    /// Gates one arrival at virtual time `now_ms`: `true` admits (including
    /// the half-open probe), `false` sheds without spending compute.
    pub fn admit(&mut self, now_ms: f64) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if now_ms >= self.open_until_ms {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
            // The probe is outstanding: exactly one request tests recovery.
            BreakerState::HalfOpen => false,
        }
    }

    /// Records a successful request from this source: resets the consecutive
    /// count and closes a half-open breaker (probe success). An `Open`
    /// breaker stays open — only the cooldown reopens the gate.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        if self.state == BreakerState::HalfOpen {
            self.state = BreakerState::Closed;
        }
    }

    /// Resets the consecutive-failure count without touching the state, for
    /// plan-stage successes whose execute outcome is still pending.
    pub fn note_progress(&mut self) {
        self.consecutive_failures = 0;
    }

    /// Records a failed request from this source at virtual time `now_ms`;
    /// trips the breaker when the threshold is reached (or immediately when
    /// the failure is the half-open probe's).
    pub fn record_failure(&mut self, now_ms: f64) {
        self.consecutive_failures += 1;
        let probe_failed = self.state == BreakerState::HalfOpen;
        if probe_failed || self.consecutive_failures >= self.policy.failure_threshold {
            self.state = BreakerState::Open;
            self.open_until_ms = now_ms + self.policy.cooldown_ms;
            self.trips += 1;
            self.consecutive_failures = 0;
        }
    }

    /// The breaker's current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker has tripped (entered `Open`).
    pub fn trips(&self) -> usize {
        self.trips
    }
}

/// Watchdog policy: an execution whose charged service time would exceed its
/// [`ResolutionLatencyModel`](crate::ResolutionLatencyModel) estimate by more
/// than `overrun_factor` is flagged on the virtual clock, charged only the
/// capped overrun (`estimate · overrun_factor` — one runaway must not blow
/// every queued deadline), and cooperatively cancelled before any backbone
/// compute is spent (the cancellation token is refused at the execute stage's
/// task boundary).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WatchdogPolicy {
    /// Factor over the latency-model estimate at which an execution is
    /// flagged and cancelled (clamped to ≥ 1).
    pub overrun_factor: f64,
}

impl WatchdogPolicy {
    /// A watchdog firing at `overrun_factor` times the estimate.
    pub fn new(overrun_factor: f64) -> Self {
        WatchdogPolicy { overrun_factor: overrun_factor.max(1.0) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_backoff_is_exponential_and_clamped() {
        let policy = RetryPolicy::new(3).with_backoff_ms(2.0);
        assert_eq!(policy.backoff_for(0), 2.0);
        assert_eq!(policy.backoff_for(1), 4.0);
        assert_eq!(policy.backoff_for(2), 8.0);
        let negative = RetryPolicy::new(1).with_backoff_ms(-5.0);
        assert_eq!(negative.backoff_ms, 0.0);
        assert!(RetryPolicy::new(2).demote_on_retry);
        assert!(!RetryPolicy::new(2).without_demotion().demote_on_retry);
    }

    #[test]
    fn breaker_trips_cools_down_and_probes() {
        let mut breaker = CircuitBreaker::new(CircuitBreakerPolicy::new(2, 100.0));
        assert!(breaker.admit(0.0));
        breaker.record_failure(10.0);
        assert_eq!(breaker.state(), BreakerState::Closed, "below threshold");
        assert!(breaker.admit(11.0));
        breaker.record_failure(20.0);
        assert_eq!(breaker.state(), BreakerState::Open, "threshold trips");
        assert_eq!(breaker.trips(), 1);
        assert!(!breaker.admit(50.0), "open breaker sheds inside the cooldown");
        assert!(breaker.admit(120.0), "cooldown elapsed admits the probe");
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        assert!(!breaker.admit(121.0), "only one probe is outstanding");
        breaker.record_success();
        assert_eq!(breaker.state(), BreakerState::Closed, "probe success closes");
        assert!(breaker.admit(122.0));
    }

    #[test]
    fn probe_failure_reopens_immediately() {
        let mut breaker = CircuitBreaker::new(CircuitBreakerPolicy::new(3, 50.0));
        for t in 0..3 {
            assert!(breaker.admit(t as f64));
            breaker.record_failure(t as f64);
        }
        assert_eq!(breaker.state(), BreakerState::Open);
        assert!(breaker.admit(60.0), "probe after cooldown");
        breaker.record_failure(61.0);
        assert_eq!(breaker.state(), BreakerState::Open, "one probe failure re-trips");
        assert_eq!(breaker.trips(), 2);
        assert!(!breaker.admit(100.0), "cooldown restarts from the probe failure");
        assert!(breaker.admit(111.1));
    }

    #[test]
    fn progress_resets_the_consecutive_count() {
        let mut breaker = CircuitBreaker::new(CircuitBreakerPolicy::new(2, 10.0));
        breaker.record_failure(0.0);
        breaker.note_progress();
        breaker.record_failure(1.0);
        assert_eq!(breaker.state(), BreakerState::Closed, "non-consecutive failures never trip");
    }

    #[test]
    fn policy_clamps() {
        assert_eq!(CircuitBreakerPolicy::new(0, -1.0), CircuitBreakerPolicy::new(1, 0.0));
        assert_eq!(WatchdogPolicy::new(0.5).overrun_factor, 1.0);
    }
}
