//! Async real-clock serving front-end over the virtual-clock admission core.
//!
//! [`SloServer`] turns the batch [`SloScheduler`](crate::SloScheduler) policy
//! into a long-running service: a dedicated event-loop thread owns the
//! incremental [`AdmissionCore`](crate::slo) and steps it at wall-clock `now`,
//! so a request submitted while a resolution bucket is forming joins *that*
//! bucket (continuous batching) instead of waiting for a full drain.
//!
//! Robustness is the point of this layer:
//!
//! * **Bounded backpressure.** [`SloServer::submit`] is non-blocking and never
//!   queues unboundedly: a full submission queue returns
//!   [`SubmitError::QueueFull`] immediately, and a slow completion consumer
//!   stalls the event loop (the completion queue is bounded and its producer
//!   blocks), which fills the submission queue, which pushes the rejection all
//!   the way back to the submitter. Memory in flight is bounded by
//!   `queue_capacity + completion_capacity + threads` requests.
//! * **Lifecycle state machine.** `Starting → Ready → Draining → Stopped`,
//!   observable via [`SloServer::state`] (readiness) and
//!   [`SloServer::is_healthy`] (liveness: the event loop has not panicked).
//!   Submissions are accepted in `Starting`/`Ready` and rejected with a typed
//!   error afterwards — never silently dropped.
//! * **Graceful drain.** [`SloServer::drain`] stops admissions and lets
//!   in-flight work finish under [`ServerConfig::drain_deadline_ms`]; at the
//!   deadline a watcher fires the shared
//!   [`CancellationToken`](rescnn_tensor::CancellationToken), mid-execution
//!   work is refused at its task boundary, and everything still pending
//!   settles as [`CoreError::Cancelled`](crate::CoreError) — every accepted
//!   ticket yields exactly one terminal [`Completion`]. Dropping the server
//!   performs the same graceful drain.
//! * **Record/replay.** With [`ServerConfig::record`], the live run logs every
//!   arrival stamp and admission step into a
//!   [`ServingTrace`](crate::ServingTrace); replaying it through
//!   [`SloScheduler::replay`](crate::SloScheduler::replay) reproduces the
//!   admission decisions bitwise (see `docs/serving-frontend.md`), turning a
//!   production incident into a deterministic regression test.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use serde::Serialize;

use rescnn_data::Sample;
use rescnn_projpeg::ProgressiveImage;
use rescnn_tensor::CancellationToken;

use crate::error::{CoreError, Result, SubmitError};
use crate::lifecycle::SourceId;
use crate::pipeline::DynamicResolutionPipeline;
use crate::slo::{
    percentile, thread_budget, AdmissionCore, QueuedRequest, SampleRef, SloOptions, SloOutcome,
    SloReport, DRAIN_CANCEL_REASON,
};
use crate::trace::ServingTrace;

/// Lifecycle state of an [`SloServer`]'s event loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ServerState {
    /// The event-loop thread is initialising; submissions are already
    /// accepted and queue until it is ready.
    Starting = 0,
    /// Serving: submissions accepted, completions streaming.
    Ready = 1,
    /// Shutdown begun: in-flight work is finishing, new submissions are
    /// rejected with [`SubmitError::Draining`].
    Draining = 2,
    /// The event loop has terminated (drained, or died; see
    /// [`SloServer::is_healthy`]).
    Stopped = 3,
}

impl ServerState {
    fn from_u8(raw: u8) -> ServerState {
        match raw {
            0 => ServerState::Starting,
            1 => ServerState::Ready,
            2 => ServerState::Draining,
            _ => ServerState::Stopped,
        }
    }
}

/// Configuration of an [`SloServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bound on the submission queue; a submit finding it full is rejected
    /// with [`SubmitError::QueueFull`]. Default 64.
    pub queue_capacity: usize,
    /// Bound on the completion queue; when the consumer falls behind, the
    /// event loop blocks delivering into it (backpressure) rather than
    /// buffering unboundedly. Default 64.
    pub completion_capacity: usize,
    /// Wall-clock budget for [`SloServer::drain`]: in-flight work finishing
    /// after this deadline is hard-cancelled via the shared
    /// [`CancellationToken`](rescnn_tensor::CancellationToken). Default 5000.
    pub drain_deadline_ms: f64,
    /// Idle-poll granularity of the event loop in milliseconds (upper bound on
    /// wake-up latency for retry arrivals; submissions wake it immediately).
    /// Default 5.
    pub idle_tick_ms: f64,
    /// Record a [`ServingTrace`](crate::ServingTrace) of the run for
    /// deterministic replay. Default off.
    pub record: bool,
    /// The admission policy (deadlines, degradation ladder, retry/breaker/
    /// watchdog/precision policies), shared with the batch scheduler.
    pub options: SloOptions,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_capacity: 64,
            completion_capacity: 64,
            drain_deadline_ms: 5_000.0,
            idle_tick_ms: 5.0,
            record: false,
            options: SloOptions::default(),
        }
    }
}

impl ServerConfig {
    /// Sets the submission-queue bound (clamped to at least 1).
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Sets the completion-queue bound (clamped to at least 1).
    #[must_use]
    pub fn with_completion_capacity(mut self, capacity: usize) -> Self {
        self.completion_capacity = capacity.max(1);
        self
    }

    /// Sets the graceful-drain deadline in milliseconds.
    #[must_use]
    pub fn with_drain_deadline_ms(mut self, deadline_ms: f64) -> Self {
        self.drain_deadline_ms = deadline_ms.max(0.0);
        self
    }

    /// Sets the idle-poll granularity in milliseconds.
    #[must_use]
    pub fn with_idle_tick_ms(mut self, tick_ms: f64) -> Self {
        self.idle_tick_ms = tick_ms.max(0.1);
        self
    }

    /// Enables trace recording for deterministic replay.
    #[must_use]
    pub fn with_record(mut self, record: bool) -> Self {
        self.record = record;
        self
    }

    /// Sets the admission policy.
    #[must_use]
    pub fn with_options(mut self, options: SloOptions) -> Self {
        self.options = options;
        self
    }
}

/// One request submitted to an [`SloServer`]. Arrival is stamped by the
/// server at [`submit`](SloServer::submit) time; the absolute deadline is
/// `arrival + deadline_slack_ms` on the same wall clock.
#[derive(Debug, Clone)]
pub struct ServerRequest {
    /// The sample to serve (shared, so the caller keeps its dataset).
    pub sample: Arc<Sample>,
    storage: Option<ProgressiveImage>,
    /// Completion slack granted past the arrival stamp, in milliseconds.
    pub deadline_slack_ms: f64,
    /// Multiplier on the request's estimated service time (fault-injection
    /// hook, mirroring [`SloRequest`](crate::SloRequest)). `1.0` is nominal.
    pub cost_multiplier: f64,
    /// Originating source, for per-source circuit breaking.
    pub source: Option<SourceId>,
}

impl ServerRequest {
    /// A request that must complete within `deadline_slack_ms` of its arrival.
    pub fn new(sample: Arc<Sample>, deadline_slack_ms: f64) -> Self {
        ServerRequest {
            sample,
            storage: None,
            deadline_slack_ms,
            cost_multiplier: 1.0,
            source: None,
        }
    }

    /// Serves from a caller-supplied progressive stream (possibly corrupt).
    #[must_use]
    pub fn with_storage(mut self, storage: ProgressiveImage) -> Self {
        self.storage = Some(storage);
        self
    }

    /// Applies a service-time multiplier (fault-injection hook).
    #[must_use]
    pub fn with_cost_multiplier(mut self, multiplier: f64) -> Self {
        self.cost_multiplier = multiplier;
        self
    }

    /// Tags the request with its originating source for breaker gating.
    #[must_use]
    pub fn with_source(mut self, source: SourceId) -> Self {
        self.source = Some(source);
        self
    }
}

/// Handle to one accepted submission. Tickets are issued densely in
/// submission order, so a ticket doubles as the request's index in the final
/// report's outcome vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct Ticket(pub u64);

/// Terminal outcome of one accepted submission, streamed to the caller as it
/// settles. Every accepted ticket yields exactly one completion.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The ticket [`submit`](SloServer::submit) returned.
    pub ticket: Ticket,
    /// What happened — same outcome type as the batch scheduler.
    pub outcome: SloOutcome,
    /// Wall arrival stamp, milliseconds since server start.
    pub wall_arrival_ms: f64,
    /// Wall settle stamp, milliseconds since server start.
    pub wall_settled_ms: f64,
    /// Wall latency: settle minus arrival.
    pub wall_latency_ms: f64,
    /// The absolute wall deadline the request carried.
    pub deadline_ms: f64,
    /// Whether the request completed *and* settled by its wall deadline.
    pub deadline_met: bool,
}

/// Final report of a server run: the deterministic virtual-clock
/// [`SloReport`] plus the wall-clock and lifecycle telemetry layered on top.
#[derive(Debug, Clone, Serialize)]
pub struct ServerReport {
    /// The virtual-clock admission report (outcomes in ticket order).
    pub slo: SloReport,
    /// Median wall latency of completed requests, ms.
    pub wall_p50_ms: f64,
    /// p99 wall latency of completed requests, ms.
    pub wall_p99_ms: f64,
    /// Completed requests that settled after their wall deadline.
    pub wall_deadline_violations: usize,
    /// Tickets accepted.
    pub submitted: usize,
    /// Submissions rejected with [`SubmitError::QueueFull`].
    pub rejected_queue_full: usize,
    /// Submissions rejected with [`SubmitError::Draining`] /
    /// [`SubmitError::Stopped`].
    pub rejected_draining: usize,
    /// Wall seconds spent draining at shutdown.
    pub drain_seconds: f64,
    /// Whether the drain finished all in-flight work before the deadline.
    pub drained_gracefully: bool,
    /// Requests hard-cancelled at the drain deadline.
    pub hard_cancelled: usize,
    /// The recorded trace, when [`ServerConfig::record`] was set.
    pub trace: Option<ServingTrace>,
}

/// One accepted submission queued for the event loop.
#[derive(Debug)]
struct InboxEntry {
    ticket: u64,
    arrival_ms: f64,
    deadline_ms: f64,
    request: ServerRequest,
}

#[derive(Debug, Default)]
struct Inbox {
    entries: VecDeque<InboxEntry>,
    drain_requested: bool,
}

#[derive(Debug, Default)]
struct CompletionInner {
    items: VecDeque<Completion>,
    /// No more completions will ever be pushed (event loop finished).
    closed: bool,
    /// The consumer dropped its stream; pushes discard instead of blocking.
    receiver_gone: bool,
    /// The drain deadline fired: pushes stop blocking on capacity so the
    /// event loop can always make progress to termination. Queue growth past
    /// the bound is limited to the requests already in flight.
    unblocked: bool,
}

/// Bounded MPSC-ish completion channel built on `Mutex`/`Condvar` (no
/// external runtime). The producer (event loop) blocks when the consumer
/// falls behind — that stall is the backpressure chain's first link.
#[derive(Debug)]
struct CompletionQueue {
    inner: Mutex<CompletionInner>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl CompletionQueue {
    fn new(capacity: usize) -> Self {
        CompletionQueue {
            inner: Mutex::new(CompletionInner::default()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, CompletionInner> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Blocking bounded push; discards when the receiver is gone, appends
    /// past the bound once unblocked for shutdown.
    fn push(&self, completion: Completion) {
        let mut inner = self.lock();
        loop {
            if inner.receiver_gone {
                return;
            }
            if inner.unblocked || inner.items.len() < self.capacity {
                inner.items.push_back(completion);
                self.not_empty.notify_all();
                return;
            }
            inner = self.not_full.wait(inner).unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    fn close(&self) {
        let mut inner = self.lock();
        inner.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    fn unblock(&self) {
        let mut inner = self.lock();
        inner.unblocked = true;
        self.not_full.notify_all();
    }

    fn mark_receiver_gone(&self) {
        let mut inner = self.lock();
        inner.receiver_gone = true;
        inner.items.clear();
        self.not_full.notify_all();
    }

    fn recv(&self) -> Option<Completion> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                self.not_full.notify_all();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    fn try_recv(&self) -> Option<Completion> {
        let mut inner = self.lock();
        let item = inner.items.pop_front();
        if item.is_some() {
            self.not_full.notify_all();
        }
        item
    }
}

/// Receiving half of the completion channel. Iterate (or call
/// [`recv`](CompletionStream::recv)) until `None`: the stream ends when the
/// server has settled every accepted ticket and stopped. Dropping the stream
/// tells the server to discard further completions instead of blocking on
/// them.
#[derive(Debug)]
pub struct CompletionStream {
    shared: Arc<Shared>,
}

impl CompletionStream {
    /// Blocks for the next completion; `None` once the server stopped and the
    /// queue is empty.
    pub fn recv(&self) -> Option<Completion> {
        self.shared.completions.recv()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Completion> {
        self.shared.completions.try_recv()
    }
}

impl Iterator for CompletionStream {
    type Item = Completion;

    fn next(&mut self) -> Option<Completion> {
        self.recv()
    }
}

impl Drop for CompletionStream {
    fn drop(&mut self) {
        self.shared.completions.mark_receiver_gone();
    }
}

/// State shared between the handle, the event loop, and the drain watcher.
#[derive(Debug)]
struct Shared {
    state: AtomicU8,
    epoch: Instant,
    inbox: Mutex<Inbox>,
    /// Wakes the event loop on submission or drain request.
    work: Condvar,
    completions: CompletionQueue,
    /// Fired at the drain deadline; every kernel-bearing execute under the
    /// event loop runs inside this token's scope during drain.
    cancel: CancellationToken,
    /// Drain-finished flag + condvar, so the watcher exits early on a
    /// graceful drain.
    drain_done: Mutex<bool>,
    drain_cv: Condvar,
    submitted: AtomicUsize,
    settled: AtomicUsize,
    rejected_queue_full: AtomicUsize,
    rejected_draining: AtomicUsize,
    report: Mutex<Option<ServerReport>>,
    worker_panic: Mutex<Option<String>>,
}

impl Shared {
    fn now_ms(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1_000.0
    }

    fn state(&self) -> ServerState {
        ServerState::from_u8(self.state.load(Ordering::Acquire))
    }

    fn store_state(&self, state: ServerState) {
        self.state.store(state as u8, Ordering::Release);
    }

    fn mark_drain_done(&self) {
        let mut done = self.drain_done.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        *done = true;
        self.drain_cv.notify_all();
    }
}

/// The async serving front-end. See the [module docs](self) for the lifecycle
/// and backpressure contracts, and `docs/serving-frontend.md` for the full
/// design.
#[derive(Debug)]
pub struct SloServer {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
    stream: Option<CompletionStream>,
    queue_capacity: usize,
    drain_deadline_ms: f64,
}

impl SloServer {
    /// Starts the event loop. Fails fast (on the caller's thread) if the
    /// latency model or memory-budget arena peaks cannot be resolved.
    ///
    /// # Errors
    /// Propagates latency-model / arena-resolution failures.
    pub fn start(pipeline: Arc<DynamicResolutionPipeline>, config: ServerConfig) -> Result<Self> {
        let (latency, arena_peaks) = AdmissionCore::resolve_models(&pipeline, &config.options)?;
        let threads = thread_budget(&pipeline, &config.options);
        let shared = Arc::new(Shared {
            state: AtomicU8::new(ServerState::Starting as u8),
            epoch: Instant::now(),
            inbox: Mutex::new(Inbox::default()),
            work: Condvar::new(),
            completions: CompletionQueue::new(config.completion_capacity),
            cancel: CancellationToken::new(),
            drain_done: Mutex::new(false),
            drain_cv: Condvar::new(),
            submitted: AtomicUsize::new(0),
            settled: AtomicUsize::new(0),
            rejected_queue_full: AtomicUsize::new(0),
            rejected_draining: AtomicUsize::new(0),
            report: Mutex::new(None),
            worker_panic: Mutex::new(None),
        });
        let queue_capacity = config.queue_capacity.max(1);
        let drain_deadline_ms = config.drain_deadline_ms.max(0.0);
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("rescnn-slo-server".into())
            .spawn(move || {
                let body = catch_unwind(AssertUnwindSafe(|| {
                    run_worker(&worker_shared, &pipeline, &config, threads, latency, arena_peaks);
                }));
                if let Err(payload) = body {
                    let message = rescnn_tensor::panic_message(payload);
                    *worker_shared
                        .worker_panic
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(message);
                }
                // Terminal bookkeeping runs even when the loop died: probes
                // observe Stopped, consumers unblock, the watcher exits.
                worker_shared.store_state(ServerState::Stopped);
                worker_shared.completions.close();
                worker_shared.mark_drain_done();
            })
            .map_err(|e| CoreError::InvalidConfig {
                reason: format!("failed to spawn server event loop: {e}"),
            })?;
        let stream = CompletionStream { shared: Arc::clone(&shared) };
        Ok(SloServer {
            shared,
            worker: Some(worker),
            stream: Some(stream),
            queue_capacity,
            drain_deadline_ms,
        })
    }

    /// Current lifecycle state.
    pub fn state(&self) -> ServerState {
        self.shared.state()
    }

    /// Readiness probe: the event loop is up and accepting submissions.
    pub fn is_ready(&self) -> bool {
        self.shared.state() == ServerState::Ready
    }

    /// Liveness probe: the event loop has not panicked. Stays true after a
    /// clean stop.
    pub fn is_healthy(&self) -> bool {
        self.shared.worker_panic.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).is_none()
    }

    /// Current submission-queue depth (entries accepted but not yet ingested
    /// by the event loop). Never exceeds the configured bound.
    pub fn queue_depth(&self) -> usize {
        self.shared.inbox.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).entries.len()
    }

    /// Tickets accepted but not yet settled.
    pub fn in_flight(&self) -> usize {
        let submitted = self.shared.submitted.load(Ordering::Acquire);
        let settled = self.shared.settled.load(Ordering::Acquire);
        submitted.saturating_sub(settled)
    }

    /// Takes the completion stream (once). Completions for every accepted
    /// ticket arrive on it as they settle; if nobody holds the stream the
    /// server discards them (the final [`ServerReport`] still carries every
    /// outcome).
    pub fn completions(&mut self) -> Option<CompletionStream> {
        self.stream.take()
    }

    /// Non-blocking submission. The arrival stamp (and with it the wall
    /// deadline) is taken under the queue lock, so ticket order, arrival
    /// order, and admission-queue order all agree.
    ///
    /// # Errors
    /// [`SubmitError::QueueFull`] under backpressure, [`SubmitError::Draining`]
    /// / [`SubmitError::Stopped`] after shutdown began — never a silent drop.
    pub fn submit(&self, request: ServerRequest) -> std::result::Result<Ticket, SubmitError> {
        let mut inbox = self.shared.inbox.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        if self.shared.state() == ServerState::Stopped {
            self.shared.rejected_draining.fetch_add(1, Ordering::AcqRel);
            return Err(SubmitError::Stopped);
        }
        if inbox.drain_requested {
            self.shared.rejected_draining.fetch_add(1, Ordering::AcqRel);
            return Err(SubmitError::Draining);
        }
        if inbox.entries.len() >= self.queue_capacity {
            self.shared.rejected_queue_full.fetch_add(1, Ordering::AcqRel);
            return Err(SubmitError::QueueFull { capacity: self.queue_capacity });
        }
        let arrival_ms = self.shared.now_ms();
        let ticket = self.shared.submitted.fetch_add(1, Ordering::AcqRel) as u64;
        let deadline_ms = arrival_ms + request.deadline_slack_ms.max(0.0);
        inbox.entries.push_back(InboxEntry { ticket, arrival_ms, deadline_ms, request });
        drop(inbox);
        self.shared.work.notify_all();
        Ok(Ticket(ticket))
    }

    /// Begins graceful shutdown (idempotent, non-blocking): new submissions
    /// are rejected from this call on, in-flight work keeps finishing, and a
    /// watcher hard-cancels whatever remains at the drain deadline. Returns
    /// whether this call initiated the drain.
    pub fn drain(&self) -> bool {
        initiate_drain(&self.shared, self.drain_deadline_ms)
    }

    /// Drains and blocks until the event loop has terminated, returning the
    /// final report.
    ///
    /// # Errors
    /// [`CoreError::Panicked`] if the event loop died instead of stopping.
    pub fn join(mut self) -> Result<ServerReport> {
        self.drain();
        self.join_inner()
    }

    fn join_inner(&mut self) -> Result<ServerReport> {
        if let Some(worker) = self.worker.take() {
            // The worker never unwinds (its body is caught); join errors are
            // unreachable in practice.
            let _ = worker.join();
        }
        if let Some(message) =
            self.shared.worker_panic.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).take()
        {
            return Err(CoreError::Panicked { message });
        }
        self.shared
            .report
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .take()
            .ok_or_else(|| CoreError::InvalidConfig {
                reason: "server report already taken or never produced".into(),
            })
    }
}

impl Drop for SloServer {
    /// Graceful by contract: dropping the handle drains in-flight work under
    /// the drain deadline rather than aborting it; stragglers past the
    /// deadline are hard-cancelled by the watcher.
    fn drop(&mut self) {
        if self.worker.is_some() {
            self.drain();
            let _ = self.join_inner();
        }
    }
}

/// Flags the drain (idempotent) and arms the deadline watcher on the first
/// call.
fn initiate_drain(shared: &Arc<Shared>, drain_deadline_ms: f64) -> bool {
    let mut inbox = shared.inbox.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    if inbox.drain_requested {
        return false;
    }
    inbox.drain_requested = true;
    drop(inbox);
    if shared.state() != ServerState::Stopped {
        shared.store_state(ServerState::Draining);
    }
    shared.work.notify_all();
    // The watcher enforces the deadline even if the event loop is wedged
    // mid-delivery (slow consumer): firing the token refuses in-flight
    // kernels at their next task boundary, and unblocking the completion
    // queue lets the loop run to termination.
    let watcher_shared = Arc::clone(shared);
    let deadline = Duration::from_secs_f64((drain_deadline_ms.max(0.0)) / 1_000.0);
    let armed = std::thread::Builder::new()
        .name("rescnn-slo-drain".into())
        .spawn(move || {
            let start = Instant::now();
            let mut done =
                watcher_shared.drain_done.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            while !*done {
                let elapsed = start.elapsed();
                if elapsed >= deadline {
                    drop(done);
                    watcher_shared.cancel.cancel();
                    watcher_shared.completions.unblock();
                    watcher_shared.work.notify_all();
                    return;
                }
                let (guard, _) = watcher_shared
                    .drain_cv
                    .wait_timeout(done, deadline - elapsed)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                done = guard;
            }
        })
        .is_ok();
    if !armed {
        // Could not arm the watcher: enforce the deadline degenerately by
        // hard-cancelling immediately rather than risking an unbounded drain.
        shared.cancel.cancel();
        shared.completions.unblock();
        shared.work.notify_all();
    }
    true
}

/// Wall-clock bookkeeping for one accepted ticket.
#[derive(Debug, Clone, Copy)]
struct WallStamp {
    arrival_ms: f64,
    deadline_ms: f64,
}

/// The event loop, run on the dedicated worker thread.
fn run_worker(
    shared: &Arc<Shared>,
    pipeline: &DynamicResolutionPipeline,
    config: &ServerConfig,
    threads: usize,
    latency: crate::slo::ResolutionLatencyModel,
    arena_peaks: Option<std::collections::BTreeMap<usize, usize>>,
) {
    let wall_start = Instant::now();
    let mut core = AdmissionCore::with_resolved(
        pipeline,
        config.options.clone(),
        threads,
        config.record,
        latency,
        arena_peaks,
    );
    let mut stamps: Vec<WallStamp> = Vec::new();
    let mut wall_latencies: Vec<f64> = Vec::new();
    let mut wall_deadline_violations = 0usize;
    let mut hard_cancelled = 0usize;
    // Starting → Ready, unless a drain raced us there first.
    let _ = shared.state.compare_exchange(
        ServerState::Starting as u8,
        ServerState::Ready as u8,
        Ordering::AcqRel,
        Ordering::Acquire,
    );

    let idle_tick = Duration::from_secs_f64(config.idle_tick_ms.max(0.1) / 1_000.0);
    let mut draining = false;
    while !draining {
        // Ingest: drain the inbox, waiting (bounded) when there is nothing to
        // do right now. Retry arrivals bound the sleep so a scheduled retry
        // wakes the loop on time even with no traffic.
        let now = shared.now_ms();
        let batch: Vec<InboxEntry> = {
            let mut inbox = shared.inbox.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            if inbox.entries.is_empty()
                && !inbox.drain_requested
                && !core.has_eligible(now)
                && !shared.cancel.is_cancelled()
            {
                let timeout = match core.next_pending_arrival() {
                    Some(arrival_ms) if arrival_ms > now => idle_tick
                        .min(Duration::from_secs_f64((arrival_ms - now).max(0.0) / 1_000.0)),
                    _ => idle_tick,
                };
                let (guard, _) = shared
                    .work
                    .wait_timeout(inbox, timeout)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                inbox = guard;
            }
            draining = inbox.drain_requested;
            inbox.entries.drain(..).collect()
        };
        for entry in batch {
            ingest(&mut core, &mut stamps, entry);
        }
        if shared.cancel.is_cancelled() {
            // The drain watcher fired while we were wedged (slow consumer):
            // go straight to the drain phase's hard-cancel path.
            draining = true;
        }
        if draining {
            break;
        }
        let now = shared.now_ms();
        if core.has_eligible(now) {
            let settled = core.admit_step(now);
            deliver(
                shared,
                &core,
                &stamps,
                &settled,
                &mut wall_latencies,
                &mut wall_deadline_violations,
            );
        }
    }

    // Drain phase: finish everything pending under the deadline; the watcher
    // (armed by `drain()`) fires the token at the deadline.
    shared.store_state(ServerState::Draining);
    let drain_start = Instant::now();
    let drain_deadline_abs = shared.now_ms() + config.drain_deadline_ms.max(0.0);
    loop {
        // Late submissions: entries accepted before the drain flag were set
        // are still owed an outcome.
        let batch: Vec<InboxEntry> = {
            let mut inbox = shared.inbox.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            inbox.entries.drain(..).collect()
        };
        for entry in batch {
            ingest(&mut core, &mut stamps, entry);
        }
        if !core.has_pending() {
            break;
        }
        let now = shared.now_ms();
        if shared.cancel.is_cancelled() || now >= drain_deadline_abs {
            let cancelled = core.cancel_pending(DRAIN_CANCEL_REASON);
            hard_cancelled += cancelled.len();
            deliver(
                shared,
                &core,
                &stamps,
                &cancelled,
                &mut wall_latencies,
                &mut wall_deadline_violations,
            );
            break;
        }
        if core.has_eligible(now) {
            // Kernel-bearing work runs inside the token scope so the
            // watcher's deadline refuses it at the next task boundary.
            let settled = shared.cancel.scope(|| core.admit_step(now));
            if shared.cancel.is_cancelled() {
                // Mid-step refusals depended on the wall clock; the tail of
                // this run is no longer bitwise replayable.
                core.mark_hard_cancelled();
            }
            deliver(
                shared,
                &core,
                &stamps,
                &settled,
                &mut wall_latencies,
                &mut wall_deadline_violations,
            );
        } else if let Some(arrival_ms) = core.next_pending_arrival() {
            // Nothing eligible yet (retry backoff): sleep toward the earlier
            // of the next arrival and the drain deadline.
            let wake = arrival_ms.min(drain_deadline_abs).max(now);
            std::thread::sleep(
                idle_tick.min(Duration::from_secs_f64((wake - now).max(0.0) / 1_000.0)),
            );
        }
    }
    let drained_gracefully = !shared.cancel.is_cancelled() && hard_cancelled == 0;
    // Let the watcher exit before it can fire on a graceful drain.
    shared.mark_drain_done();

    let (slo, trace) = core.finish(wall_start.elapsed().as_secs_f64());
    wall_latencies.sort_by(f64::total_cmp);
    let report = ServerReport {
        wall_p50_ms: percentile(&wall_latencies, 0.50),
        wall_p99_ms: percentile(&wall_latencies, 0.99),
        wall_deadline_violations,
        submitted: slo.total,
        rejected_queue_full: shared.rejected_queue_full.load(Ordering::Acquire),
        rejected_draining: shared.rejected_draining.load(Ordering::Acquire),
        drain_seconds: drain_start.elapsed().as_secs_f64(),
        drained_gracefully,
        hard_cancelled,
        trace,
        slo,
    };
    *shared.report.lock().unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(report);
}

/// Feeds one accepted submission into the core, preserving the
/// ticket == submission-index invariant.
fn ingest<'a>(core: &mut AdmissionCore<'a>, stamps: &mut Vec<WallStamp>, entry: InboxEntry) {
    let InboxEntry { ticket, arrival_ms, deadline_ms, request } = entry;
    stamps.push(WallStamp { arrival_ms, deadline_ms });
    let index = core.submit(QueuedRequest {
        sample: SampleRef::Shared(request.sample),
        storage: request.storage,
        arrival_ms,
        deadline_ms,
        cost_multiplier: request.cost_multiplier,
        source: request.source,
    });
    debug_assert_eq!(index as u64, ticket, "tickets are issued in submission order");
}

/// Streams the step's terminal outcomes to the consumer and folds them into
/// the wall-clock aggregates.
fn deliver(
    shared: &Shared,
    core: &AdmissionCore<'_>,
    stamps: &[WallStamp],
    settled: &[usize],
    wall_latencies: &mut Vec<f64>,
    wall_deadline_violations: &mut usize,
) {
    if settled.is_empty() {
        return;
    }
    let settled_ms = shared.now_ms();
    for &index in settled {
        let outcome =
            core.outcome(index).cloned().expect("a settled index always holds a terminal outcome");
        let stamp = stamps[index];
        let completed = matches!(outcome, SloOutcome::Completed(_));
        let deadline_met = completed && settled_ms <= stamp.deadline_ms;
        if completed {
            wall_latencies.push(settled_ms - stamp.arrival_ms);
            if !deadline_met {
                *wall_deadline_violations += 1;
            }
        }
        shared.completions.push(Completion {
            ticket: Ticket(index as u64),
            outcome,
            wall_arrival_ms: stamp.arrival_ms,
            wall_settled_ms: settled_ms,
            wall_latency_ms: settled_ms - stamp.arrival_ms,
            deadline_ms: stamp.deadline_ms,
            deadline_met,
        });
        // Counted after delivery, so `in_flight` includes outcomes still
        // wedged behind a slow consumer.
        shared.settled.fetch_add(1, Ordering::AcqRel);
    }
}
