//! The dynamic-resolution inference pipeline (Figure 4) and its evaluation harness.
//!
//! Storage holds progressively encoded images. For each image the pipeline first reads the
//! scans its storage policy prescribes for the 112 × 112 preview, runs the scale model on
//! that preview, picks the backbone resolution predicted most likely to be correct, reads
//! any additional scans the chosen resolution requires, and finally runs the backbone.
//! Accuracy is judged by the calibrated oracle on exactly what was decoded; compute cost
//! is accounted in FLOPs of the backbone at the chosen resolution plus the scale model.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use rescnn_data::{Dataset, DatasetKind, Sample};
use rescnn_imaging::{crop_and_resize_cow, CropRatio, SsimConfig, SsimReference};
use rescnn_models::ModelKind;
use rescnn_oracle::{AccuracyOracle, EvalContext};
use rescnn_projpeg::{ProgressiveImage, ScanPlan};
use rescnn_tensor::{
    algo_calibration_generation, AlgoCalibration, ConvAlgo, ConvShapeKey, EngineContext,
};

use crate::calibration::{cheapest_sufficient_point, quality_at_scans, ScanPoint, StoragePolicy};
use crate::error::{CoreError, Result};
use crate::features::extract_features;
use crate::scale_model::ScaleModel;

/// Configuration of a dynamic-resolution deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Backbone model family.
    pub backbone: ModelKind,
    /// Dataset family the backbone serves.
    pub dataset: DatasetKind,
    /// Candidate inference resolutions.
    pub resolutions: Vec<usize>,
    /// Centre-crop ratio applied at inference time.
    pub crop: CropRatio,
    /// Progressive-encoding quality factor of the stored images.
    pub encode_quality: u8,
    /// Storage policy (calibrated SSIM thresholds per resolution, or read-all).
    pub storage: StoragePolicy,
    /// Model family used for the scale model's cost accounting (MobileNetV2 in the paper).
    pub scale_model_kind: ModelKind,
    /// Worker threads the tensor engine may use for this pipeline's kernels (`None`
    /// keeps the engine's current setting: `RESCNN_THREADS` or the host's available
    /// parallelism). Applied as a scoped [`EngineContext`] per call — never as
    /// process-global state — so pipelines with different settings can serve
    /// concurrently without racing.
    pub engine_threads: Option<usize>,
    /// Path to a persisted convolution-dispatch calibration (written by
    /// `rescnn_hwsim::CalibratedCostModel::save`). When set, pipeline
    /// construction loads it and installs the measured-fastest-algorithm table
    /// via [`install_conv_calibration`], so serving starts warm with the
    /// dispatch defaults wall-clock sweeps picked on this host. Unlike thread
    /// budgets, the table is deliberately process-wide: it supplies *default*
    /// choices only (scoped/global overrides and uncalibrated shapes are
    /// unaffected), so concurrent pipelines cannot disagree about it.
    pub conv_calibration: Option<String>,
}

impl PipelineConfig {
    /// A configuration with the paper's defaults: seven candidate resolutions, 75 % crop,
    /// quality-90 storage, read-all policy, MobileNetV2 scale model.
    pub fn new(backbone: ModelKind, dataset: DatasetKind) -> Self {
        PipelineConfig {
            backbone,
            dataset,
            resolutions: vec![112, 168, 224, 280, 336, 392, 448],
            crop: CropRatio::new(0.75).expect("0.75 is a valid crop ratio"),
            encode_quality: 90,
            storage: StoragePolicy::read_all(),
            scale_model_kind: ModelKind::MobileNetV2,
            engine_threads: None,
            conv_calibration: None,
        }
    }

    /// Sets the crop ratio.
    pub fn with_crop(mut self, crop: CropRatio) -> Self {
        self.crop = crop;
        self
    }

    /// Sets the storage policy.
    pub fn with_storage(mut self, storage: StoragePolicy) -> Self {
        self.storage = storage;
        self
    }

    /// Sets the candidate resolutions.
    pub fn with_resolutions(mut self, resolutions: Vec<usize>) -> Self {
        self.resolutions = resolutions;
        self
    }

    /// Bounds the tensor engine's kernel parallelism for this pipeline's calls
    /// (scoped per call via [`EngineContext`]; does not mutate process state).
    pub fn with_engine_threads(mut self, threads: usize) -> Self {
        self.engine_threads = Some(threads.max(1));
        self
    }

    /// Warm-starts convolution dispatch from a persisted calibration file (see
    /// [`PipelineConfig::conv_calibration`]).
    pub fn with_conv_calibration(mut self, path: impl Into<String>) -> Self {
        self.conv_calibration = Some(path.into());
        self
    }

    /// The scoped engine configuration this pipeline installs around kernel-bearing
    /// calls.
    pub fn engine_context(&self) -> EngineContext {
        match self.engine_threads {
            Some(threads) => EngineContext::new().with_threads(threads),
            None => EngineContext::new(),
        }
    }
}

/// The outcome of one dynamic-resolution inference.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InferenceRecord {
    /// Sample identifier.
    pub sample_id: u64,
    /// Resolution the scale model chose.
    pub chosen_resolution: usize,
    /// Scans actually read from storage.
    pub scans_read: usize,
    /// Bytes actually read from storage.
    pub bytes_read: u64,
    /// Full encoded size of the image.
    pub total_bytes: u64,
    /// SSIM quality of what the backbone saw (vs. the ground-truth resize).
    pub quality: f64,
    /// Whether the backbone classified the image correctly.
    pub correct: bool,
    /// Backbone compute cost at the chosen resolution, in GFLOPs (paper convention).
    pub backbone_gflops: f64,
    /// Scale-model compute cost, in GFLOPs.
    pub scale_gflops: f64,
}

impl InferenceRecord {
    /// Fraction of the stored file that was read.
    pub fn read_fraction(&self) -> f64 {
        if self.total_bytes == 0 {
            1.0
        } else {
            self.bytes_read as f64 / self.total_bytes as f64
        }
    }

    /// Total compute cost (scale model + backbone) in GFLOPs.
    pub fn total_gflops(&self) -> f64 {
        self.backbone_gflops + self.scale_gflops
    }
}

/// Aggregate results of evaluating a pipeline (or a static baseline) over a dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Human-readable label ("dynamic", "static-224", …).
    pub label: String,
    /// Top-1 accuracy.
    pub accuracy: f64,
    /// Mean compute cost per image in GFLOPs.
    pub mean_gflops: f64,
    /// Mean fraction of stored bytes read per image.
    pub mean_read_fraction: f64,
    /// Mean bytes read per image (0 when byte accounting was skipped).
    pub mean_bytes_read: f64,
    /// How often each resolution was chosen.
    pub resolution_histogram: BTreeMap<usize, usize>,
    /// Number of samples evaluated.
    pub num_samples: usize,
}

impl PipelineReport {
    /// Folds per-sample records into the aggregate report, accumulating in
    /// iteration order. Both the sequential [`DynamicResolutionPipeline::evaluate`]
    /// and the batch scheduler build their reports through this one fold, which is
    /// what makes their "identical results" guarantee structural rather than two
    /// loops kept in sync by hand.
    pub(crate) fn from_records<'r>(
        label: String,
        records: impl IntoIterator<Item = &'r InferenceRecord>,
    ) -> Self {
        let mut n = 0usize;
        let mut correct = 0usize;
        let mut gflops = 0.0;
        let mut read_fraction = 0.0;
        let mut bytes = 0.0;
        let mut histogram: BTreeMap<usize, usize> = BTreeMap::new();
        for record in records {
            n += 1;
            correct += usize::from(record.correct);
            gflops += record.total_gflops();
            read_fraction += record.read_fraction();
            bytes += record.bytes_read as f64;
            *histogram.entry(record.chosen_resolution).or_insert(0) += 1;
        }
        Self::from_parts(label, correct, gflops, read_fraction, bytes, histogram, n)
    }

    fn from_parts(
        label: String,
        correct: usize,
        gflops: f64,
        read_fraction: f64,
        bytes: f64,
        histogram: BTreeMap<usize, usize>,
        n: usize,
    ) -> Self {
        let nf = n.max(1) as f64;
        PipelineReport {
            label,
            accuracy: correct as f64 / nf,
            mean_gflops: gflops / nf,
            mean_read_fraction: read_fraction / nf,
            mean_bytes_read: bytes / nf,
            resolution_histogram: histogram,
            num_samples: n,
        }
    }
}

/// The committed outcome of inference stage 1 (preview read + scale-model choice),
/// carrying the storage decisions forward into [`DynamicResolutionPipeline::execute`].
///
/// Splitting planning from execution is what makes resolution-bucketed batch
/// serving possible: a scheduler plans a whole queue, groups the plans by
/// [`chosen_resolution`](Self::chosen_resolution), and executes each bucket as a
/// batch (see [`BatchScheduler`](crate::BatchScheduler)).
///
/// The plan carries exactly the points the execute stage consults — the preview
/// read, the chosen resolution's sufficient point, and the quality at the deeper
/// of the two — rather than full quality/read curves for every candidate
/// resolution: the planner computes curves lazily and early-exits at the storage
/// policy's thresholds, so points it never needed are never measured.
#[derive(Debug, Clone)]
pub struct InferencePlan {
    /// Resolution the scale model chose for the backbone pass.
    pub chosen_resolution: usize,
    /// The progressively encoded image (storage state).
    pub(crate) encoded: ProgressiveImage,
    /// Scans/quality the preview stage already read.
    pub(crate) preview_point: ScanPoint,
    /// The storage policy's point for the chosen resolution.
    pub(crate) chosen_point: ScanPoint,
    /// Scans the whole inference reads: the deeper of preview and chosen point.
    pub(crate) scans_read: usize,
    /// SSIM at the chosen resolution after `scans_read` scans — what the backbone sees.
    pub(crate) quality: f64,
}

impl InferencePlan {
    /// SSIM of what the backbone will see at the planned resolution — the
    /// delivered quality the SLO scheduler's degradation floor is checked
    /// against.
    pub fn quality(&self) -> f64 {
        self.quality
    }

    /// Scans the inference will read from storage.
    pub fn scans_read(&self) -> usize {
        self.scans_read
    }
}

/// Loads a convolution-dispatch calibration persisted by
/// `rescnn_hwsim::CalibratedCostModel::save` and installs its
/// measured-fastest-algorithm table process-wide
/// ([`rescnn_tensor::install_algo_calibration`]), returning the number of
/// calibrated layer shapes.
///
/// Serving deployments run the measured sweep offline (see
/// `examples/kernel_tuning.rs`), persist it, and point
/// [`PipelineConfig::with_conv_calibration`] at the file so every pipeline in
/// the process starts warm. Explicit algorithm overrides and shapes absent from
/// the table are unaffected.
///
/// What [`install_conv_calibration`] accomplished: how much of the file this
/// build could use, and what it had to leave behind.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationInstall {
    /// Calibrated layer shapes now steering default dispatch.
    pub shapes: usize,
    /// Persisted entries skipped because their algorithm names are unknown to
    /// this build (a file written by a newer engine). The load still succeeds;
    /// callers surface these as [`PipelineWarning::CalibrationEntriesSkipped`].
    pub skipped: Vec<rescnn_hwsim::SkippedCalibration>,
}

/// Loads a convolution-dispatch calibration persisted by
/// `rescnn_hwsim::CalibratedCostModel::save` and installs its
/// measured-fastest-algorithm table process-wide
/// ([`rescnn_tensor::install_algo_calibration`]), returning the number of
/// calibrated layer shapes along with any entries the load skipped.
///
/// Serving deployments run the measured sweep offline (see
/// `examples/kernel_tuning.rs`), persist it, and point
/// [`PipelineConfig::with_conv_calibration`] at the file so every pipeline in
/// the process starts warm. Explicit algorithm overrides and shapes absent from
/// the table are unaffected. Entries whose algorithm name this build does not
/// recognize are skipped (and reported), not fatal: a calibration file from a
/// newer engine still warm-starts every arm this build has.
///
/// # Errors
/// Returns [`CoreError::InvalidConfig`] if the file cannot be read or parsed.
pub fn install_conv_calibration(path: &str) -> Result<CalibrationInstall> {
    let model = rescnn_hwsim::CalibratedCostModel::load(path, rescnn_hwsim::CpuProfile::host())
        .map_err(|e| CoreError::InvalidConfig {
            reason: format!("conv calibration {path}: {e}"),
        })?;
    let table = model.dispatch_table();
    let shapes = table.len();
    rescnn_tensor::install_algo_calibration(Some(table));
    Ok(CalibrationInstall { shapes, skipped: model.skipped_entries().to_vec() })
}

/// Cached per-resolution bucket dispatch tables — keyed by `(resolution,
/// int8)`, each tagged with the process-wide calibration generation it was
/// resolved under.
type BucketDispatchCache = BTreeMap<(usize, bool), (u64, Arc<AlgoCalibration>)>;

/// A non-fatal condition recorded during pipeline construction: the pipeline
/// is fully usable, but degraded from what the configuration asked for.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum PipelineWarning {
    /// A configured conv-calibration file could not be loaded (missing,
    /// truncated, corrupt). The pipeline fell back to the analytic cost model
    /// instead of failing construction — a stale warm-start file must never
    /// take serving down.
    CalibrationLoadFailed {
        /// The configured calibration path.
        path: String,
        /// Why the load failed.
        reason: String,
    },
    /// A conv-calibration file loaded, but some of its entries named kernel
    /// algorithms this build does not have (the file came from a newer
    /// engine). Every entry this build understands was installed; the named
    /// arm simply contributes nothing to dispatch.
    CalibrationEntriesSkipped {
        /// The configured calibration path.
        path: String,
        /// The unrecognized algorithm name.
        algo: String,
        /// How many persisted entries carried that name.
        lines: usize,
    },
}

impl std::fmt::Display for PipelineWarning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineWarning::CalibrationLoadFailed { path, reason } => write!(
                f,
                "conv calibration {path} failed to load ({reason}); using the analytic cost model"
            ),
            PipelineWarning::CalibrationEntriesSkipped { path, algo, lines } => write!(
                f,
                "conv calibration {path}: skipped {lines} entr{} for unknown algorithm \
                 {algo:?}; remaining entries installed",
                if *lines == 1 { "y" } else { "ies" }
            ),
        }
    }
}

/// The dynamic-resolution pipeline.
#[derive(Debug, Clone)]
pub struct DynamicResolutionPipeline {
    config: PipelineConfig,
    scale_model: ScaleModel,
    oracle: AccuracyOracle,
    backbone_gflops: BTreeMap<usize, f64>,
    scale_gflops: f64,
    /// Per-resolution-bucket conv-dispatch tables, resolved lazily and tagged
    /// with the calibration generation they were derived from (shared across
    /// pipeline clones; see [`DynamicResolutionPipeline::bucket_dispatch`]).
    bucket_dispatch: Arc<Mutex<BucketDispatchCache>>,
    /// Planned peak-live activation bytes per resolution, computed lazily from
    /// `Network::arena_plan` (shared across clones; see
    /// [`DynamicResolutionPipeline::arena_peak_bytes`]).
    arena_peaks: Arc<Mutex<BTreeMap<usize, usize>>>,
    /// Non-fatal degradations recorded at construction.
    warnings: Vec<PipelineWarning>,
}

impl DynamicResolutionPipeline {
    /// Assembles a pipeline from its parts.
    ///
    /// # Errors
    /// Returns an error if the configuration has no candidate resolutions or the FLOP
    /// accounting fails.
    pub fn new(
        config: PipelineConfig,
        scale_model: ScaleModel,
        oracle: AccuracyOracle,
    ) -> Result<Self> {
        if config.resolutions.is_empty() {
            return Err(CoreError::InvalidConfig { reason: "no candidate resolutions".into() });
        }
        // A bad warm-start calibration file degrades to the analytic cost
        // model with a recorded warning — it must not fail construction.
        let mut warnings = Vec::new();
        if let Some(path) = &config.conv_calibration {
            match install_conv_calibration(path) {
                Ok(install) => {
                    // Aggregate skips per unknown algorithm name: one warning
                    // per foreign arm, not one per persisted line.
                    let mut by_algo: BTreeMap<&str, usize> = BTreeMap::new();
                    for entry in &install.skipped {
                        *by_algo.entry(entry.algo.as_str()).or_insert(0) += 1;
                    }
                    for (algo, lines) in by_algo {
                        warnings.push(PipelineWarning::CalibrationEntriesSkipped {
                            path: path.clone(),
                            algo: algo.to_string(),
                            lines,
                        });
                    }
                }
                Err(error) => {
                    warnings.push(PipelineWarning::CalibrationLoadFailed {
                        path: path.clone(),
                        reason: error.to_string(),
                    });
                }
            }
        }
        let backbone_arch = config.backbone.arch(config.dataset.num_classes());
        let mut backbone_gflops = BTreeMap::new();
        for &res in &config.resolutions {
            backbone_gflops.insert(res, backbone_arch.gflops(res)?);
        }
        let scale_arch = config.scale_model_kind.arch(config.dataset.num_classes());
        let scale_gflops = scale_arch.gflops(scale_model.preview_resolution())?;
        Ok(DynamicResolutionPipeline {
            config,
            scale_model,
            oracle,
            backbone_gflops,
            scale_gflops,
            bucket_dispatch: Arc::new(Mutex::new(BucketDispatchCache::new())),
            arena_peaks: Arc::new(Mutex::new(BTreeMap::new())),
            warnings,
        })
    }

    /// Non-fatal degradations recorded while the pipeline was constructed
    /// (e.g. an unreadable calibration warm-start file). Empty in the healthy
    /// case.
    pub fn warnings(&self) -> &[PipelineWarning] {
        &self.warnings
    }

    /// Planned peak-live activation bytes of one backbone forward at
    /// `resolution`, from `Network::arena_plan`'s liveness simulation
    /// (computed once per resolution, cached across pipeline clones).
    ///
    /// This is the per-request memory figure a memory-budgeted admission
    /// controller charges: the measured arena high-water mark of a real
    /// forward never exceeds it (`ActivationArena::peak_live_bytes` is pinned
    /// against it in `rescnn-models`' tests).
    ///
    /// # Errors
    /// Returns an error if the resolution is too small for the backbone's
    /// downsampling schedule.
    pub fn arena_peak_bytes(&self, resolution: usize) -> Result<usize> {
        let mut cache = self.arena_peaks.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(&bytes) = cache.get(&resolution) {
            return Ok(bytes);
        }
        let network = rescnn_models::Network::new(
            self.config.backbone,
            self.config.dataset.num_classes(),
            0, // weights do not affect the arena plan
        );
        let plan =
            network.arena_plan(rescnn_tensor::Shape::chw(3, resolution, resolution)).map_err(
                |e| CoreError::InvalidConfig { reason: format!("arena plan at {resolution}: {e}") },
            )?;
        cache.insert(resolution, plan.peak_live_bytes);
        Ok(plan.peak_live_bytes)
    }

    /// The per-shape convolution dispatch table for one resolution bucket:
    /// every conv layer of the backbone at `resolution`, resolved through
    /// [`rescnn_tensor::select_algo`] **once** and cached — instead of per
    /// layer per request inside the bucket. The cache is shared across
    /// pipeline clones and invalidated automatically when a new process-wide
    /// calibration table is installed (e.g. by a sweep-once-on-boot run
    /// finishing).
    ///
    /// The batch scheduler installs the returned table as a scoped calibration
    /// ([`rescnn_tensor::with_algo_calibration_scope`]) around each bucket's
    /// execution. Because the entries are exactly what dispatch would have
    /// resolved anyway, this never changes results — it removes the per-call
    /// calibration lock from the bucket's hot path.
    pub fn bucket_dispatch(&self, resolution: usize) -> Arc<AlgoCalibration> {
        self.bucket_dispatch_impl(resolution, false)
    }

    /// The quantized variant of [`bucket_dispatch`](Self::bucket_dispatch):
    /// the same per-shape table with every int8-eligible convolution
    /// overridden onto [`ConvAlgo::Int8`] (grouped/depthwise shapes keep
    /// their f32 kernels — the arm cannot run them). The SLO scheduler scopes
    /// this table around a precision-demoted bucket's execution; it never
    /// leaks into f32 buckets or process-wide state.
    pub fn bucket_dispatch_int8(&self, resolution: usize) -> Arc<AlgoCalibration> {
        self.bucket_dispatch_impl(resolution, true)
    }

    fn bucket_dispatch_impl(&self, resolution: usize, int8: bool) -> Arc<AlgoCalibration> {
        let generation = algo_calibration_generation();
        let mut cache = self.bucket_dispatch.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((cached_generation, table)) = cache.get(&(resolution, int8)) {
            if *cached_generation == generation {
                return Arc::clone(table);
            }
        }
        let mut table = AlgoCalibration::new();
        let arch = self.config.backbone.arch(self.config.dataset.num_classes());
        if let Ok(layers) = arch.conv_layers(resolution) {
            for layer in layers {
                // `select_algo` (not `planned_conv_algo`): explicit overrides
                // must stay dynamic — baking a caller's scoped override into
                // the cached table would outlive its scope.
                let algo = if int8 && ConvAlgo::Int8.supports(&layer.params) {
                    ConvAlgo::Int8
                } else {
                    rescnn_tensor::select_algo(&layer.params, layer.input)
                };
                table.set(ConvShapeKey::new(layer.params, layer.input), algo);
            }
        }
        let table = Arc::new(table);
        cache.insert((resolution, int8), (generation, Arc::clone(&table)));
        table
    }

    /// The configuration in use.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The scoped engine configuration installed around this pipeline's
    /// kernel-bearing calls ([`infer`](Self::infer), [`plan`](Self::plan),
    /// [`execute`](Self::execute)). Construction never mutates process-global
    /// engine state, so pipelines with different thread budgets coexist safely.
    pub fn engine_context(&self) -> EngineContext {
        self.config.engine_context()
    }

    /// Compute cost of the scale model per image, in GFLOPs.
    pub fn scale_model_gflops(&self) -> f64 {
        self.scale_gflops
    }

    /// Backbone compute cost at a candidate resolution, in GFLOPs.
    pub fn backbone_gflops(&self, resolution: usize) -> Option<f64> {
        self.backbone_gflops.get(&resolution).copied()
    }

    /// Runs the full dynamic pipeline on one sample, inside this pipeline's
    /// [`EngineContext`] scope.
    ///
    /// # Errors
    /// Returns an error if rendering, encoding, decoding, or feature extraction fails.
    pub fn infer(&self, sample: &Sample) -> Result<InferenceRecord> {
        self.config.engine_context().scope(|| {
            let plan = self.plan_unscoped(sample)?;
            self.execute_unscoped(sample, &plan)
        })
    }

    /// Stage 1 of an inference: reads the preview scans, runs the scale model, and
    /// commits to a backbone resolution. The returned plan carries the decoded
    /// state forward so [`execute`](Self::execute) never repeats storage work —
    /// and so a batch scheduler can group plans by resolution before executing.
    ///
    /// # Errors
    /// Returns an error if rendering, encoding, decoding, or feature extraction fails.
    pub fn plan(&self, sample: &Sample) -> Result<InferencePlan> {
        self.config.engine_context().scope(|| self.plan_unscoped(sample))
    }

    /// Stages 2–3 of an inference: reads whatever extra scans the planned
    /// resolution requires and judges backbone correctness on exactly what was
    /// decoded. `sample` must be the one the plan was produced from.
    ///
    /// # Errors
    /// Returns an error if decoding fails.
    pub fn execute(&self, sample: &Sample, plan: &InferencePlan) -> Result<InferenceRecord> {
        self.config.engine_context().scope(|| self.execute_unscoped(sample, plan))
    }

    /// [`plan`](Self::plan) without installing the pipeline's engine context —
    /// for callers (the batch scheduler) that manage their own thread budget.
    ///
    /// The planner decodes incrementally and early-exits at the storage policy's
    /// thresholds: the preview walk stops at the first sufficient scan prefix and
    /// its presented image is fed straight to the scale model (no second decode of
    /// the same prefix), and only the *chosen* resolution's point is measured —
    /// never the full curve of every candidate. The resulting records are
    /// identical to computing full curves and looking the points up afterwards,
    /// because `point_for_threshold` selects exactly the first sufficient point.
    pub(crate) fn plan_unscoped(&self, sample: &Sample) -> Result<InferencePlan> {
        let original = sample.render()?;
        let encoded =
            ProgressiveImage::encode(&original, self.config.encode_quality, ScanPlan::standard())?;
        self.plan_from_parts(&original, encoded)
    }

    /// [`plan`](Self::plan) over a caller-supplied storage state instead of
    /// re-encoding the rendered sample: the path by which externally stored —
    /// possibly corrupt or truncated — progressive streams reach the decoder.
    /// A stream error surfaces as [`CoreError::Codec`]; the serving layers
    /// isolate it to the one request that carried the bad stream.
    ///
    /// # Errors
    /// Returns an error if rendering, decoding, or feature extraction fails.
    pub fn plan_with_storage(
        &self,
        sample: &Sample,
        encoded: ProgressiveImage,
    ) -> Result<InferencePlan> {
        self.config.engine_context().scope(|| self.plan_with_storage_unscoped(sample, encoded))
    }

    /// [`plan_with_storage`](Self::plan_with_storage) without installing the
    /// pipeline's engine context.
    pub(crate) fn plan_with_storage_unscoped(
        &self,
        sample: &Sample,
        encoded: ProgressiveImage,
    ) -> Result<InferencePlan> {
        let original = sample.render()?;
        self.plan_from_parts(&original, encoded)
    }

    /// The planning body shared by the render-and-encode and caller-supplied
    /// storage paths.
    fn plan_from_parts(
        &self,
        original: &rescnn_imaging::Image,
        encoded: ProgressiveImage,
    ) -> Result<InferencePlan> {
        let crop = self.config.crop;
        let preview_res = self.scale_model.preview_resolution();
        let num_scans = encoded.num_scans();

        // Stage 1a: read the preview's scans (early-exiting at its threshold) and run
        // the scale model on the frame that walk already presented. The ground-truth
        // reference is lifted into a persistent SsimReference, so its integral state
        // is built once and shared by every prefix the walk scores.
        let preview_reference = crop_and_resize_cow(original, crop, preview_res)?;
        let preview_reference = SsimReference::new(&preview_reference, SsimConfig::default())?;
        let mut decoder = encoded.progressive_decoder()?;
        let (preview_point, preview_image) = cheapest_sufficient_point(
            &mut decoder,
            &preview_reference,
            crop,
            preview_res,
            self.config.storage.threshold_for(preview_res),
        )?;
        let features = extract_features(&preview_image)?;
        let chosen_resolution = self.scale_model.choose_resolution(&features);

        // Stage 1b: the storage decision for the chosen resolution, and the quality of
        // the deepest prefix the inference will actually read.
        let (chosen_point, scans_read, quality) = if chosen_resolution == preview_res {
            (preview_point, preview_point.scans, preview_point.ssim)
        } else {
            let chosen_reference = crop_and_resize_cow(original, crop, chosen_resolution)?;
            let chosen_reference = SsimReference::new(&chosen_reference, SsimConfig::default())?;
            match self.config.storage.threshold_for(chosen_resolution) {
                None => {
                    // Read-all: only the final scan's quality matters, and the preview
                    // decoder can advance there directly.
                    let (point, _) = cheapest_sufficient_point(
                        &mut decoder,
                        &chosen_reference,
                        crop,
                        chosen_resolution,
                        None,
                    )?;
                    (point, preview_point.scans.max(num_scans), point.ssim)
                }
                Some(threshold) => {
                    // Threshold search scores prefixes from scan 1, which needs a fresh
                    // pass (the preview decoder is already past the early prefixes).
                    let mut chosen_decoder = encoded.progressive_decoder()?;
                    let (point, _) = cheapest_sufficient_point(
                        &mut chosen_decoder,
                        &chosen_reference,
                        crop,
                        chosen_resolution,
                        Some(threshold),
                    )?;
                    let scans_read = preview_point.scans.max(point.scans);
                    let quality = if scans_read == point.scans {
                        point.ssim
                    } else {
                        // scans_read == preview_point.scans here, where the preview
                        // decoder already sits — score its frame rather than advancing
                        // the fresh pass through scans it would have to re-decode.
                        quality_at_scans(
                            &mut decoder,
                            &chosen_reference,
                            crop,
                            chosen_resolution,
                            scans_read,
                        )?
                    };
                    (point, scans_read, quality)
                }
            }
        };

        Ok(InferencePlan {
            chosen_resolution,
            encoded,
            preview_point,
            chosen_point,
            scans_read,
            quality,
        })
    }

    /// Re-plans an already-planned request at a different backbone resolution,
    /// reusing the plan's storage state and preview read — the SLO scheduler's
    /// degradation ladder (`slo` module). The returned plan is bitwise identical
    /// to what planning would have produced had the scale model chosen
    /// `resolution` in the first place: the storage decision re-runs the same
    /// `cheapest_sufficient_point` walk over the same encoded scans, and the
    /// incremental decoder's invariant makes every scored frame identical to a
    /// from-scratch decode.
    ///
    /// # Errors
    /// Returns an error if rendering or decoding fails.
    pub(crate) fn replan_at(
        &self,
        sample: &Sample,
        plan: &InferencePlan,
        resolution: usize,
    ) -> Result<InferencePlan> {
        if resolution == plan.chosen_resolution {
            return Ok(plan.clone());
        }
        let crop = self.config.crop;
        let original = sample.render()?;
        let encoded = plan.encoded.clone();
        let num_scans = encoded.num_scans();
        let reference = crop_and_resize_cow(&original, crop, resolution)?;
        let reference = SsimReference::new(&reference, SsimConfig::default())?;
        let mut decoder = encoded.progressive_decoder()?;
        let (chosen_point, scans_read, quality) = match self
            .config
            .storage
            .threshold_for(resolution)
        {
            None => {
                let (point, _) =
                    cheapest_sufficient_point(&mut decoder, &reference, crop, resolution, None)?;
                (point, plan.preview_point.scans.max(num_scans), point.ssim)
            }
            Some(threshold) => {
                let (point, _) = cheapest_sufficient_point(
                    &mut decoder,
                    &reference,
                    crop,
                    resolution,
                    Some(threshold),
                )?;
                let scans_read = plan.preview_point.scans.max(point.scans);
                let quality = if scans_read == point.scans {
                    point.ssim
                } else {
                    // The decoder sits at `point.scans` < `scans_read`; score the
                    // deeper prefix the preview stage already paid for.
                    quality_at_scans(&mut decoder, &reference, crop, resolution, scans_read)?
                };
                (point, scans_read, quality)
            }
        };
        Ok(InferencePlan {
            chosen_resolution: resolution,
            encoded,
            preview_point: plan.preview_point,
            chosen_point,
            scans_read,
            quality,
        })
    }

    /// [`execute`](Self::execute) without installing the pipeline's engine context.
    pub(crate) fn execute_unscoped(
        &self,
        sample: &Sample,
        plan: &InferencePlan,
    ) -> Result<InferenceRecord> {
        let chosen_resolution = plan.chosen_resolution;

        // Stage 2: charge for whatever extra data the chosen resolution required.
        let scans_read = plan.preview_point.scans.max(plan.chosen_point.scans);
        debug_assert_eq!(scans_read, plan.scans_read);
        let bytes_read = plan.encoded.cumulative_bytes(scans_read);

        // Stage 3: backbone correctness on exactly what was decoded.
        let ctx = EvalContext {
            model: self.config.backbone,
            dataset: self.config.dataset,
            resolution: chosen_resolution,
            crop: self.config.crop,
            quality: plan.quality,
        };
        let correct = self.oracle.is_correct(sample, &ctx);

        Ok(InferenceRecord {
            sample_id: sample.id,
            chosen_resolution,
            scans_read,
            bytes_read,
            total_bytes: plan.encoded.total_bytes(),
            quality: plan.quality,
            correct,
            backbone_gflops: self.backbone_gflops.get(&chosen_resolution).copied().unwrap_or(0.0),
            scale_gflops: self.scale_gflops,
        })
    }

    /// Evaluates the dynamic pipeline over a dataset.
    ///
    /// # Errors
    /// Returns an error if the dataset is empty or any per-sample step fails.
    pub fn evaluate(&self, dataset: &Dataset) -> Result<PipelineReport> {
        if dataset.is_empty() {
            return Err(CoreError::EmptyDataset);
        }
        let mut records = Vec::with_capacity(dataset.len());
        for sample in dataset {
            records.push(self.infer(sample)?);
        }
        Ok(PipelineReport::from_records("dynamic".to_string(), &records))
    }

    /// Evaluates a *static* baseline at a fixed resolution.
    ///
    /// With `use_storage_policy = false` the baseline reads every byte (quality 1.0) and
    /// no pixels need to be rendered, making large sweeps cheap. With `true`, images are
    /// rendered, encoded, and read according to the calibrated thresholds — the
    /// "Calibrated" columns of Tables III/IV.
    ///
    /// # Errors
    /// Returns an error if the dataset is empty, the resolution is unknown to the FLOP
    /// table, or any per-sample step fails.
    pub fn evaluate_static(
        &self,
        dataset: &Dataset,
        resolution: usize,
        use_storage_policy: bool,
    ) -> Result<PipelineReport> {
        if dataset.is_empty() {
            return Err(CoreError::EmptyDataset);
        }
        let backbone_gflops = self.backbone_gflops.get(&resolution).copied().ok_or_else(|| {
            CoreError::InvalidConfig {
                reason: format!("resolution {resolution} is not a configured candidate"),
            }
        })?;
        let mut correct = 0usize;
        let mut read_fraction_total = 0.0;
        let mut bytes_total = 0.0;
        let mut histogram: BTreeMap<usize, usize> = BTreeMap::new();
        *histogram.entry(resolution).or_insert(0) += dataset.len();

        for sample in dataset {
            let (quality, read_fraction, bytes) =
                if use_storage_policy && !self.config.storage.is_read_all() {
                    let original = sample.render()?;
                    let encoded = ProgressiveImage::encode(
                        &original,
                        self.config.encode_quality,
                        ScanPlan::standard(),
                    )?;
                    let point = self.config.storage.scans_for(
                        &original,
                        &encoded,
                        self.config.crop,
                        resolution,
                    )?;
                    (point.ssim, point.read_fraction, encoded.cumulative_bytes(point.scans) as f64)
                } else {
                    (1.0, 1.0, 0.0)
                };
            let ctx = EvalContext {
                model: self.config.backbone,
                dataset: self.config.dataset,
                resolution,
                crop: self.config.crop,
                quality,
            };
            correct += usize::from(self.oracle.is_correct(sample, &ctx));
            read_fraction_total += read_fraction;
            bytes_total += bytes;
        }
        let label = if use_storage_policy {
            format!("static-{resolution}-calibrated")
        } else {
            format!("static-{resolution}")
        };
        Ok(PipelineReport::from_parts(
            label,
            correct,
            backbone_gflops * dataset.len() as f64,
            read_fraction_total,
            bytes_total,
            histogram,
            dataset.len(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale_model::{ScaleModelConfig, ScaleModelTrainer};
    use rescnn_data::DatasetSpec;

    fn build_pipeline(crop: f64, resolutions: Vec<usize>) -> DynamicResolutionPipeline {
        let config =
            ScaleModelConfig { resolutions: resolutions.clone(), epochs: 30, ..Default::default() };
        let trainer = ScaleModelTrainer::new(config, ModelKind::ResNet18, DatasetKind::CarsLike);
        let train = DatasetSpec::cars_like().with_len(60).with_max_dimension(96).build(1);
        let scale_model = trainer.train(&train, 3).unwrap();
        let pipeline_config = PipelineConfig::new(ModelKind::ResNet18, DatasetKind::CarsLike)
            .with_crop(CropRatio::new(crop).unwrap())
            .with_resolutions(resolutions);
        DynamicResolutionPipeline::new(pipeline_config, scale_model, AccuracyOracle::new(77))
            .unwrap()
    }

    #[test]
    fn pipeline_construction_validates_config() {
        let config =
            ScaleModelConfig { resolutions: vec![112, 224], epochs: 5, ..Default::default() };
        let trainer = ScaleModelTrainer::new(config, ModelKind::ResNet18, DatasetKind::CarsLike);
        let train = DatasetSpec::cars_like().with_len(12).with_max_dimension(64).build(1);
        let scale_model = trainer.train(&train, 2).unwrap();
        let bad = PipelineConfig::new(ModelKind::ResNet18, DatasetKind::CarsLike)
            .with_resolutions(vec![]);
        assert!(DynamicResolutionPipeline::new(bad, scale_model, AccuracyOracle::new(0)).is_err());
    }

    #[test]
    fn inference_record_is_well_formed() {
        let pipeline = build_pipeline(0.56, vec![112, 224, 336]);
        let data = DatasetSpec::cars_like().with_len(4).with_max_dimension(96).build(50);
        for sample in &data {
            let record = pipeline.infer(sample).unwrap();
            assert!(pipeline.config().resolutions.contains(&record.chosen_resolution));
            assert!(record.scans_read >= 1 && record.scans_read <= 5);
            assert!(record.bytes_read <= record.total_bytes);
            assert!((0.0..=1.0).contains(&record.quality) || record.quality > 0.99);
            assert!(record.read_fraction() <= 1.0);
            assert!(record.total_gflops() > record.backbone_gflops);
            assert!(record.scale_gflops < 0.2, "scale model must be cheap");
        }
    }

    #[test]
    fn dynamic_beats_worst_static_and_tracks_best_static() {
        let pipeline = build_pipeline(0.56, vec![112, 224, 336]);
        let test = DatasetSpec::cars_like().with_len(40).with_max_dimension(96).build(123);
        let dynamic = pipeline.evaluate(&test).unwrap();
        let statics: Vec<PipelineReport> = [112usize, 224, 336]
            .iter()
            .map(|&r| pipeline.evaluate_static(&test, r, false).unwrap())
            .collect();
        let best = statics.iter().map(|r| r.accuracy).fold(0.0, f64::max);
        let worst = statics.iter().map(|r| r.accuracy).fold(1.0, f64::min);
        assert!(dynamic.accuracy >= worst, "dynamic {} vs worst {}", dynamic.accuracy, worst);
        assert!(
            dynamic.accuracy >= best - 0.12,
            "dynamic {} should be near the best static {}",
            dynamic.accuracy,
            best
        );
        // Average compute cost must be below always running the largest resolution.
        assert!(dynamic.mean_gflops < statics.last().unwrap().mean_gflops);
        assert_eq!(dynamic.num_samples, 40);
        assert_eq!(
            dynamic.resolution_histogram.values().sum::<usize>(),
            40,
            "every sample must pick a resolution"
        );
    }

    #[test]
    fn static_reports_have_expected_shape() {
        let pipeline = build_pipeline(0.75, vec![112, 224, 336]);
        let test = DatasetSpec::cars_like().with_len(25).with_max_dimension(64).build(7);
        let low = pipeline.evaluate_static(&test, 112, false).unwrap();
        let high = pipeline.evaluate_static(&test, 336, false).unwrap();
        assert!(high.accuracy >= low.accuracy, "at 75% crop more resolution helps");
        assert!(high.mean_gflops > low.mean_gflops);
        assert_eq!(low.label, "static-112");
        assert!((low.mean_read_fraction - 1.0).abs() < 1e-12);
        assert!(pipeline.evaluate_static(&test, 999, false).is_err());
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let pipeline = build_pipeline(0.75, vec![112, 224]);
        let empty = DatasetSpec::cars_like().with_len(0).build(0);
        assert!(matches!(pipeline.evaluate(&empty), Err(CoreError::EmptyDataset)));
        assert!(matches!(
            pipeline.evaluate_static(&empty, 112, false),
            Err(CoreError::EmptyDataset)
        ));
    }

    #[test]
    fn engine_threads_are_scoped_not_global() {
        // Regression: `with_engine_threads` used to leak into a process-global via
        // `set_num_threads` in `DynamicResolutionPipeline::new`, so two pipelines
        // with different settings raced (last constructor won for both).
        let config =
            ScaleModelConfig { resolutions: vec![112, 224], epochs: 5, ..Default::default() };
        let trainer = ScaleModelTrainer::new(config, ModelKind::ResNet18, DatasetKind::CarsLike);
        let train = DatasetSpec::cars_like().with_len(12).with_max_dimension(64).build(1);
        let scale_model = trainer.train(&train, 2).unwrap();

        let global_before = rescnn_tensor::num_threads();
        let narrow = DynamicResolutionPipeline::new(
            PipelineConfig::new(ModelKind::ResNet18, DatasetKind::CarsLike).with_engine_threads(1),
            scale_model.clone(),
            AccuracyOracle::new(1),
        )
        .unwrap();
        let wide = DynamicResolutionPipeline::new(
            PipelineConfig::new(ModelKind::ResNet18, DatasetKind::CarsLike).with_engine_threads(3),
            scale_model,
            AccuracyOracle::new(1),
        )
        .unwrap();
        assert_eq!(
            rescnn_tensor::num_threads(),
            global_before,
            "pipeline construction must not mutate the process-global thread count"
        );

        // Each pipeline sees its own budget inside its scope; they don't clobber
        // each other regardless of construction or use order.
        assert_eq!(narrow.engine_context().scope(rescnn_tensor::num_threads), 1);
        assert_eq!(wide.engine_context().scope(rescnn_tensor::num_threads), 3);
        assert_eq!(narrow.engine_context().scope(rescnn_tensor::num_threads), 1);

        // Both pipelines still infer correctly (and identically — thread budget
        // must never change results).
        let data = DatasetSpec::cars_like().with_len(3).with_max_dimension(64).build(9);
        for sample in &data {
            let a = narrow.infer(sample).unwrap();
            let b = wide.infer(sample).unwrap();
            assert_eq!(a, b, "thread budget must not affect inference results");
        }
        assert_eq!(rescnn_tensor::num_threads(), global_before);
    }

    #[test]
    fn plan_execute_split_matches_monolithic_infer() {
        let pipeline = build_pipeline(0.56, vec![112, 224, 336]);
        let data = DatasetSpec::cars_like().with_len(5).with_max_dimension(96).build(33);
        for sample in &data {
            let plan = pipeline.plan(sample).unwrap();
            assert!(pipeline.config().resolutions.contains(&plan.chosen_resolution));
            let staged = pipeline.execute(sample, &plan).unwrap();
            let monolithic = pipeline.infer(sample).unwrap();
            assert_eq!(staged, monolithic, "plan+execute must equal infer exactly");
        }
    }

    #[test]
    fn early_exit_plan_matches_full_curve_semantics() {
        // The planner stops measuring a resolution at its first sufficient scan prefix.
        // That early exit must reproduce exactly what the original implementation got by
        // computing full curves for every candidate resolution and looking points up
        // afterwards — including the case where the preview stage read deeper into the
        // file than the chosen resolution's own sufficient point.
        use crate::calibration::{CalibrationCurves, StoragePolicy};
        use std::collections::BTreeMap;

        let resolutions = vec![112usize, 224, 336];
        let mut thresholds = BTreeMap::new();
        for &res in &resolutions {
            thresholds.insert(res, 0.97f64);
        }
        let config =
            ScaleModelConfig { resolutions: resolutions.clone(), epochs: 30, ..Default::default() };
        let trainer = ScaleModelTrainer::new(config, ModelKind::ResNet18, DatasetKind::CarsLike);
        let train = DatasetSpec::cars_like().with_len(60).with_max_dimension(96).build(1);
        let scale_model = trainer.train(&train, 3).unwrap();
        let pipeline_config = PipelineConfig::new(ModelKind::ResNet18, DatasetKind::CarsLike)
            .with_crop(CropRatio::new(0.56).unwrap())
            .with_resolutions(resolutions)
            .with_storage(StoragePolicy::from_thresholds(thresholds));
        let pipeline =
            DynamicResolutionPipeline::new(pipeline_config, scale_model, AccuracyOracle::new(77))
                .unwrap();

        let data = DatasetSpec::cars_like().with_len(8).with_max_dimension(96).build(41);
        for sample in &data {
            let record = pipeline.infer(sample).unwrap();

            // Reconstruct the pre-early-exit semantics from full curves.
            let crop = pipeline.config().crop;
            let preview_res = 112usize;
            let original = sample.render().unwrap();
            let encoded = sample.encode_progressive(pipeline.config().encode_quality).unwrap();
            let mut all_res = vec![preview_res];
            all_res.extend(pipeline.config().resolutions.iter().copied());
            all_res.dedup();
            let curves =
                CalibrationCurves::sample_curves(&original, &encoded, crop, &all_res).unwrap();
            let point_for = |res: usize| {
                let idx = all_res.iter().position(|&r| r == res).unwrap();
                match pipeline.config().storage.threshold_for(res) {
                    Some(t) => curves[idx].point_for_threshold(t).unwrap(),
                    None => *curves[idx].points.last().unwrap(),
                }
            };
            let preview_point = point_for(preview_res);
            let chosen_point = point_for(record.chosen_resolution);
            let scans_read = preview_point.scans.max(chosen_point.scans);
            let chosen_idx = all_res.iter().position(|&r| r == record.chosen_resolution).unwrap();
            let quality = curves[chosen_idx].points[scans_read - 1].ssim;

            assert_eq!(record.scans_read, scans_read, "sample {}", sample.id);
            assert_eq!(record.quality.to_bits(), quality.to_bits(), "sample {}", sample.id);
            assert_eq!(record.bytes_read, encoded.cumulative_bytes(scans_read));
        }
    }

    #[test]
    fn conv_calibration_warm_start_installs_table() {
        // A pipeline configured with a persisted calibration installs it at
        // construction; an unloadable file degrades to the analytic cost model
        // with a typed warning instead of failing construction.
        let _guard = crate::test_sync::calibration_lock();
        use rescnn_hwsim::{CalibratedCostModel, CpuProfile};
        use rescnn_models::ConvLayerShape;
        use rescnn_tensor::{Conv2dParams, ConvAlgo, ConvShapeKey, Shape};

        let missing = PipelineConfig::new(ModelKind::ResNet18, DatasetKind::CarsLike)
            .with_conv_calibration("/nonexistent/rescnn-calibration.txt");
        let config =
            ScaleModelConfig { resolutions: vec![112, 224], epochs: 5, ..Default::default() };
        let trainer = ScaleModelTrainer::new(config, ModelKind::ResNet18, DatasetKind::CarsLike);
        let train = DatasetSpec::cars_like().with_len(12).with_max_dimension(64).build(1);
        let scale_model = trainer.train(&train, 2).unwrap();
        let degraded =
            DynamicResolutionPipeline::new(missing, scale_model.clone(), AccuracyOracle::new(0))
                .expect("a missing calibration degrades, it does not fail construction");
        assert_eq!(degraded.warnings().len(), 1);
        let PipelineWarning::CalibrationLoadFailed { path, .. } = &degraded.warnings()[0] else {
            panic!("expected a load-failure warning, got {:?}", degraded.warnings()[0]);
        };
        assert_eq!(path, "/nonexistent/rescnn-calibration.txt");
        assert!(
            degraded.warnings()[0].to_string().contains("analytic cost model"),
            "the warning must say what the pipeline fell back to"
        );
        // The degraded pipeline still serves inference.
        let probe = DatasetSpec::cars_like().with_len(1).with_max_dimension(64).build(9);
        degraded.infer(&probe[0]).expect("degraded pipeline must still serve");

        // A calibration file that was written and then truncated mid-byte (a
        // crash during persist) degrades the same way.
        let truncated_path =
            std::env::temp_dir().join(format!("rescnn-core-truncated-{}.txt", std::process::id()));
        {
            let mut probe_model = CalibratedCostModel::new(CpuProfile::host());
            probe_model.record(
                &ConvLayerShape {
                    params: Conv2dParams::new(13, 13, 3, 1, 1),
                    input: Shape::chw(13, 37, 37),
                },
                ConvAlgo::Winograd,
                1.0e-3,
            );
            probe_model.save(&truncated_path).unwrap();
            // Tear the final record line (never just the trailing newline).
            let bytes = std::fs::read(&truncated_path).unwrap();
            std::fs::write(&truncated_path, &bytes[..bytes.len() - 5]).unwrap();
        }
        let torn = PipelineConfig::new(ModelKind::ResNet18, DatasetKind::CarsLike)
            .with_conv_calibration(truncated_path.to_string_lossy().to_string());
        let torn =
            DynamicResolutionPipeline::new(torn, scale_model.clone(), AccuracyOracle::new(0))
                .expect("a truncated calibration degrades, it does not fail construction");
        assert_eq!(torn.warnings().len(), 1, "truncated file must warn exactly once");
        std::fs::remove_file(&truncated_path).ok();

        // Calibrate an exotic shape no test network uses, so the installed
        // table cannot perturb any other test's dispatch decisions.
        let layer = ConvLayerShape {
            params: Conv2dParams::new(13, 13, 3, 1, 1),
            input: Shape::chw(13, 37, 37),
        };
        let mut model = CalibratedCostModel::new(CpuProfile::host());
        model.record(&layer, ConvAlgo::Winograd, 1.0e-3);
        model.record(&layer, ConvAlgo::Im2colPacked, 2.0e-3);
        let path =
            std::env::temp_dir().join(format!("rescnn-core-warmstart-{}.txt", std::process::id()));
        model.save(&path).unwrap();

        let warm = PipelineConfig::new(ModelKind::ResNet18, DatasetKind::CarsLike)
            .with_conv_calibration(path.to_string_lossy().to_string());
        let pipeline =
            DynamicResolutionPipeline::new(warm, scale_model, AccuracyOracle::new(0)).unwrap();
        assert!(pipeline.warnings().is_empty(), "a loadable calibration must not warn");
        assert!(pipeline.config().conv_calibration.is_some());
        let table = rescnn_tensor::installed_algo_calibration().expect("table installed");
        let key = ConvShapeKey::new(layer.params, layer.input);
        assert_eq!(table.get(&key), Some(ConvAlgo::Winograd));
        assert_eq!(
            rescnn_tensor::select_algo(&layer.params, layer.input),
            ConvAlgo::Winograd,
            "dispatch must pick the measured-fastest algorithm for calibrated shapes"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn forward_compatible_calibration_warns_but_installs() {
        // A calibration file from a newer engine build — carrying an arm this
        // build lacks — must still install every entry it understands, with a
        // typed warning naming the foreign arm and how many lines it lost.
        let _guard = crate::test_sync::calibration_lock();
        let path =
            std::env::temp_dir().join(format!("rescnn-core-future-{}.txt", std::process::id()));
        std::fs::write(
            &path,
            "rescnn-conv-calibration v1\n\
             measure 13 13 3 1 1 1 37 37 im2col_packed 2e-3\n\
             measure 13 13 3 1 1 1 37 37 int4_packed 1e-3\n\
             measure 13 13 3 1 1 1 41 41 int4_packed 1e-3\n",
        )
        .unwrap();

        let config =
            ScaleModelConfig { resolutions: vec![112, 224], epochs: 5, ..Default::default() };
        let trainer = ScaleModelTrainer::new(config, ModelKind::ResNet18, DatasetKind::CarsLike);
        let train = DatasetSpec::cars_like().with_len(12).with_max_dimension(64).build(1);
        let scale_model = trainer.train(&train, 2).unwrap();
        let warm = PipelineConfig::new(ModelKind::ResNet18, DatasetKind::CarsLike)
            .with_conv_calibration(path.to_string_lossy().to_string());
        let pipeline =
            DynamicResolutionPipeline::new(warm, scale_model, AccuracyOracle::new(0)).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(
            pipeline.warnings(),
            &[PipelineWarning::CalibrationEntriesSkipped {
                path: path.to_string_lossy().to_string(),
                algo: "int4_packed".into(),
                lines: 2,
            }]
        );
        assert!(pipeline.warnings()[0].to_string().contains("int4_packed"));
        // The entry this build understands really did install.
        let table = rescnn_tensor::installed_algo_calibration().expect("table installed");
        use rescnn_tensor::{Conv2dParams, ConvAlgo, ConvShapeKey, Shape};
        let key = ConvShapeKey::new(Conv2dParams::new(13, 13, 3, 1, 1), Shape::chw(13, 37, 37));
        assert_eq!(table.get(&key), Some(ConvAlgo::Im2colPacked));
    }

    #[test]
    fn gflops_accounting_matches_architectures() {
        let pipeline = build_pipeline(0.75, vec![112, 224]);
        let r18 = ModelKind::ResNet18.arch(DatasetKind::CarsLike.num_classes());
        assert!((pipeline.backbone_gflops(224).unwrap() - r18.gflops(224).unwrap()).abs() < 1e-9);
        assert!(pipeline.backbone_gflops(999).is_none());
        let mb2 = ModelKind::MobileNetV2.arch(DatasetKind::CarsLike.num_classes());
        assert!((pipeline.scale_model_gflops() - mb2.gflops(112).unwrap()).abs() < 1e-9);
    }
}
