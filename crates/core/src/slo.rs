//! SLO-aware serving: deadlines, admission control, load-shedding via
//! resolution degradation, and per-request fault isolation.
//!
//! The paper's central lever — resolution — is exactly the knob a serving
//! system can turn *per request, at admission time* when it is about to miss a
//! deadline: executing at 224² instead of 448² cuts backbone cost roughly 4×
//! while the calibrated storage policy keeps delivered SSIM above a
//! deployment-chosen floor. The [`SloScheduler`] builds that policy on top of
//! the resolution-bucketed [`BatchScheduler`](crate::BatchScheduler) machinery:
//!
//! 1. **Plan.** Every request is planned (preview read + scale model) under a
//!    per-request fault-isolation boundary, committing it to a *planned*
//!    resolution. A corrupt stream or a panic becomes a
//!    [`SloOutcome::Failed`] record; every other request proceeds.
//! 2. **Admit.** Requests are walked in arrival order over a deterministic
//!    *virtual clock*: a single virtual server whose per-request service time
//!    comes from a [`ResolutionLatencyModel`] (calibrated measurements when
//!    available, the analytic roofline otherwise). A request whose queueing
//!    delay alone exceeds its deadline has already expired
//!    ([`Rejected::DeadlineExceeded`]). Otherwise the scheduler picks the
//!    *largest* resolution — never above the plan's — whose estimated service
//!    fits the remaining slack **and** whose re-planned delivered SSIM meets
//!    [`SloOptions::ssim_floor`]; picking below the planned resolution is
//!    *degradation*, counted in [`SloReport::degraded`]. Only when no such
//!    resolution exists is the request shed ([`Rejected::Overloaded`]).
//! 3. **Execute.** Admitted requests are bucketed by their final resolution and
//!    executed as homogeneous batches over the persistent pool, again with
//!    per-request isolation: one panicking or failing request yields its own
//!    [`SloOutcome::Failed`] while the rest of its batch completes.
//!
//! Because every admission decision is a pure function of the plans, the
//! latency model, and the requests' virtual arrival/deadline stamps — never of
//! wall-clock time — the entire report (outcomes, degradations, sheds,
//! latency percentiles) is bitwise reproducible across thread budgets;
//! [`SloReport::wall_seconds`] is the only wall-clock-dependent field.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;

use rescnn_data::Sample;
use rescnn_hwsim::{CalibratedCostModel, CpuProfile};
use rescnn_projpeg::ProgressiveImage;

use crate::error::{CoreError, Result};
use crate::pipeline::{DynamicResolutionPipeline, InferencePlan, InferenceRecord, PipelineReport};
use crate::serve::{run_batch_isolated, BatchOptions};

/// One serving request with its SLO contract, timed on the virtual clock.
#[derive(Debug, Clone)]
pub struct SloRequest<'a> {
    /// The sample to serve.
    pub sample: &'a Sample,
    /// Caller-supplied progressive stream (possibly corrupt); `None` encodes
    /// from the rendered sample.
    storage: Option<ProgressiveImage>,
    /// Arrival time on the virtual clock, in milliseconds.
    pub arrival_ms: f64,
    /// Absolute completion deadline on the virtual clock, in milliseconds.
    pub deadline_ms: f64,
    /// Multiplier on the request's estimated service time (a fault-injection
    /// hook: latency spikes, slow tenants). `1.0` is nominal.
    pub cost_multiplier: f64,
}

impl<'a> SloRequest<'a> {
    /// A request arriving at `arrival_ms` that must complete by `deadline_ms`.
    pub fn new(sample: &'a Sample, arrival_ms: f64, deadline_ms: f64) -> Self {
        SloRequest { sample, storage: None, arrival_ms, deadline_ms, cost_multiplier: 1.0 }
    }

    /// Serves a caller-supplied stored stream instead of re-encoding the sample
    /// — the path by which corrupt or truncated streams enter the scheduler.
    pub fn with_storage(mut self, storage: ProgressiveImage) -> Self {
        self.storage = Some(storage);
        self
    }

    /// Scales the request's estimated service time (≥ 0; a fault-injection
    /// latency spike).
    pub fn with_cost_multiplier(mut self, multiplier: f64) -> Self {
        self.cost_multiplier = multiplier.max(0.0);
        self
    }
}

/// Deterministic per-resolution service-time estimates, in milliseconds.
///
/// The admission controller needs an *a-priori* cost for "one request at
/// resolution r" that never depends on wall-clock noise; this model supplies
/// it, either from explicit estimates or from a
/// [`CalibratedCostModel`](rescnn_hwsim::CalibratedCostModel) (exact
/// measurements where swept, the analytic roofline elsewhere).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ResolutionLatencyModel {
    /// Estimated milliseconds per request, keyed by resolution.
    entries: BTreeMap<usize, f64>,
}

impl ResolutionLatencyModel {
    /// Builds the model from explicit `(resolution, milliseconds)` estimates.
    pub fn from_estimates(estimates: impl IntoIterator<Item = (usize, f64)>) -> Self {
        ResolutionLatencyModel {
            entries: estimates.into_iter().map(|(r, ms)| (r, ms.max(0.0))).collect(),
        }
    }

    /// Predicts each resolution's forward cost for `pipeline`'s backbone from a
    /// cost model (calibrated or purely analytic).
    ///
    /// # Errors
    /// Returns an error if a resolution is unservable by the backbone.
    pub fn from_cost_model(
        model: &CalibratedCostModel,
        pipeline: &DynamicResolutionPipeline,
    ) -> Result<Self> {
        let config = pipeline.config();
        let arch = config.backbone.arch(config.dataset.num_classes());
        let mut entries = BTreeMap::new();
        for &resolution in &config.resolutions {
            let layers = arch.conv_layers(resolution).map_err(|e| CoreError::InvalidConfig {
                reason: format!("latency model at {resolution}: {e}"),
            })?;
            entries.insert(resolution, model.predict_forward_seconds(&layers) * 1e3);
        }
        Ok(ResolutionLatencyModel { entries })
    }

    /// The analytic-roofline model for the host CPU — the default when no
    /// calibration has been recorded.
    ///
    /// # Errors
    /// Returns an error if a resolution is unservable by the backbone.
    pub fn analytic(pipeline: &DynamicResolutionPipeline) -> Result<Self> {
        Self::from_cost_model(&CalibratedCostModel::new(CpuProfile::host()), pipeline)
    }

    /// Estimated service milliseconds at `resolution` (the nearest modelled
    /// resolution at or above it when the exact one is absent, the largest
    /// modelled one otherwise, `0` for an empty model).
    pub fn estimate_ms(&self, resolution: usize) -> f64 {
        if let Some(ms) = self.entries.get(&resolution) {
            return *ms;
        }
        self.entries
            .range(resolution..)
            .next()
            .or_else(|| self.entries.iter().next_back())
            .map_or(0.0, |(_, ms)| *ms)
    }
}

/// Why a request was rejected without executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Rejected {
    /// The request's queueing delay alone exceeded its deadline: it expired
    /// before the server could start it.
    DeadlineExceeded,
    /// Even the cheapest acceptable resolution (the SSIM floor's bucket) could
    /// not finish within the deadline; the request was shed to protect the
    /// rest of the queue.
    Overloaded,
}

/// What happened to one request, in submission order.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum SloOutcome {
    /// The request executed; timing and the (possibly degraded) resolution are
    /// in the payload.
    Completed(CompletedRequest),
    /// Admission control rejected the request.
    Rejected(Rejected),
    /// The request's own plan/execute stage failed (codec error on its stream,
    /// contained panic, …); every other request was unaffected.
    Failed(CoreError),
}

/// Timing and outcome detail of a completed request.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CompletedRequest {
    /// The inference outcome (resolution, bytes, correctness, quality).
    pub record: InferenceRecord,
    /// Resolution the scale model originally planned.
    pub planned_resolution: usize,
    /// Resolution actually served (≤ planned; `<` means degraded).
    pub served_resolution: usize,
    /// When service began on the virtual clock.
    pub virtual_start_ms: f64,
    /// When service finished on the virtual clock.
    pub virtual_finish_ms: f64,
    /// Virtual finish minus arrival: the latency the client observed.
    pub virtual_latency_ms: f64,
}

/// Policy knobs for the SLO scheduler.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct SloOptions {
    /// Batching/thread/strictness knobs shared with the batch scheduler.
    pub batch: BatchOptions,
    /// Minimum delivered SSIM a degraded request may be served at. `None`
    /// allows degrading to the cheapest resolution of the ladder.
    pub ssim_floor: Option<f64>,
    /// Service-time estimates; `None` builds the analytic model for the host.
    pub latency: Option<ResolutionLatencyModel>,
    /// Fault-injection hook: panic inside the execute stage of every `n`-th
    /// admitted request (1-based submission count). Exercises the panic
    /// containment path deterministically; `None` in production.
    pub chaos_panic_every: Option<usize>,
}

impl SloOptions {
    /// Sets the batching options.
    pub fn with_batch(mut self, batch: BatchOptions) -> Self {
        self.batch = batch;
        self
    }

    /// Sets the minimum delivered SSIM degradation may serve at.
    pub fn with_ssim_floor(mut self, floor: f64) -> Self {
        self.ssim_floor = Some(floor);
        self
    }

    /// Supplies explicit service-time estimates.
    pub fn with_latency_model(mut self, model: ResolutionLatencyModel) -> Self {
        self.latency = Some(model);
        self
    }

    /// Enables deterministic panic injection (every `n`-th request).
    pub fn with_chaos_panic_every(mut self, n: usize) -> Self {
        self.chaos_panic_every = Some(n.max(1));
        self
    }
}

/// The outcome of draining an [`SloScheduler`] queue.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SloReport {
    /// Aggregate accuracy/cost report over the *completed* requests, folded in
    /// submission order.
    pub report: PipelineReport,
    /// Per-request outcome, in submission order.
    pub outcomes: Vec<SloOutcome>,
    /// Requests submitted.
    pub total: usize,
    /// Requests that executed to completion.
    pub completed: usize,
    /// Completed requests served below their planned resolution.
    pub degraded: usize,
    /// Requests shed by admission control ([`Rejected::Overloaded`]).
    pub shed: usize,
    /// Requests that expired in the queue ([`Rejected::DeadlineExceeded`]).
    pub expired: usize,
    /// Requests isolated after their own stage failed or panicked.
    pub faulted: usize,
    /// Completed requests / total — the headline goodput.
    pub goodput: f64,
    /// Shed requests / total.
    pub shed_rate: f64,
    /// Requests that did not complete within their deadline / total
    /// (expired + shed + faulted; admitted requests meet their deadline by
    /// construction of the admission test).
    pub slo_violation_rate: f64,
    /// Median virtual latency of completed requests, in milliseconds.
    pub p50_latency_ms: f64,
    /// 99th-percentile virtual latency of completed requests, in milliseconds.
    pub p99_latency_ms: f64,
    /// Mean delivered SSIM over completed requests.
    pub mean_delivered_ssim: f64,
    /// Largest queueing backlog any request saw at arrival, in virtual ms.
    pub peak_backlog_ms: f64,
    /// Real wall-clock seconds the run took (informational only; every other
    /// field is wall-clock-independent).
    pub wall_seconds: f64,
    /// Thread budget the scheduler distributed.
    pub threads: usize,
}

/// Deadline- and load-aware serving scheduler over one pipeline.
///
/// # Examples
/// ```no_run
/// use rescnn_core::{DynamicResolutionPipeline, SloOptions, SloRequest, SloScheduler};
/// # fn demo(pipeline: &DynamicResolutionPipeline, data: &rescnn_data::Dataset)
/// #     -> rescnn_core::Result<()> {
/// let mut scheduler = SloScheduler::new(pipeline, SloOptions::default().with_ssim_floor(0.85));
/// for (i, sample) in data.iter().enumerate() {
///     let arrival = i as f64 * 2.0;
///     scheduler.submit(SloRequest::new(sample, arrival, arrival + 50.0));
/// }
/// let outcome = scheduler.run()?;
/// println!("goodput {:.3}, degraded {}, shed {}", outcome.goodput, outcome.degraded, outcome.shed);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SloScheduler<'a> {
    pipeline: &'a DynamicResolutionPipeline,
    options: SloOptions,
    queue: Vec<SloRequest<'a>>,
}

/// Post-admission state of one admitted request.
#[derive(Debug)]
struct Admitted {
    /// Submission index.
    index: usize,
    plan: InferencePlan,
    planned_resolution: usize,
    virtual_start_ms: f64,
    virtual_finish_ms: f64,
}

impl<'a> SloScheduler<'a> {
    /// Creates a scheduler serving one pipeline.
    pub fn new(pipeline: &'a DynamicResolutionPipeline, options: SloOptions) -> Self {
        SloScheduler { pipeline, options, queue: Vec::new() }
    }

    /// Enqueues one request, returning its submission index. Outcomes are
    /// always reported in submission order.
    pub fn submit(&mut self, request: SloRequest<'a>) -> usize {
        self.queue.push(request);
        self.queue.len() - 1
    }

    /// Number of requests currently queued.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    fn thread_budget(&self) -> usize {
        self.options
            .batch
            .threads
            .or(self.pipeline.engine_context().threads)
            .unwrap_or_else(rescnn_tensor::num_threads)
            .max(1)
    }

    /// Drains the queue: plans, admits over the virtual clock, executes, and
    /// aggregates.
    ///
    /// # Errors
    /// Returns an error only if the queue is empty or no latency model could be
    /// built; per-request failures are isolated into [`SloOutcome::Failed`].
    pub fn run(&mut self) -> Result<SloReport> {
        if self.queue.is_empty() {
            return Err(CoreError::EmptyDataset);
        }
        let wall_start = Instant::now();
        let queue = std::mem::take(&mut self.queue);
        let threads = self.thread_budget();
        let latency = match &self.options.latency {
            Some(model) => model.clone(),
            None => ResolutionLatencyModel::analytic(self.pipeline)?,
        };
        let mut outcomes: Vec<Option<SloOutcome>> = vec![None; queue.len()];

        // Stage 1: plan every request under per-request isolation.
        let plans = run_batch_isolated(self.pipeline, threads, queue.len(), |index| {
            let request = &queue[index];
            match &request.storage {
                Some(encoded) => {
                    self.pipeline.plan_with_storage_unscoped(request.sample, encoded.clone())
                }
                None => self.pipeline.plan_unscoped(request.sample),
            }
        });
        let mut plan_slots: Vec<Option<InferencePlan>> = Vec::with_capacity(queue.len());
        for (index, outcome) in plans.into_iter().enumerate() {
            match outcome {
                Ok(plan) => plan_slots.push(Some(plan)),
                Err(error) => {
                    outcomes[index] = Some(SloOutcome::Failed(error));
                    plan_slots.push(None);
                }
            }
        }

        // Stage 2: admission over the virtual clock, in arrival order (ties
        // break by submission index, keeping the walk fully deterministic).
        let mut order: Vec<usize> = (0..queue.len()).filter(|&i| plan_slots[i].is_some()).collect();
        order.sort_by(|&a, &b| {
            queue[a].arrival_ms.total_cmp(&queue[b].arrival_ms).then_with(|| a.cmp(&b))
        });
        let ladder = &self.pipeline.config().resolutions;
        let mut server_free_ms = 0.0f64;
        let mut peak_backlog_ms = 0.0f64;
        let mut admitted: Vec<Admitted> = Vec::new();
        for index in order {
            let request = &queue[index];
            let plan = plan_slots[index].take().expect("planned requests reach admission once");
            let virtual_start = server_free_ms.max(request.arrival_ms);
            peak_backlog_ms = peak_backlog_ms.max(virtual_start - request.arrival_ms);
            if virtual_start >= request.deadline_ms {
                outcomes[index] = Some(SloOutcome::Rejected(Rejected::DeadlineExceeded));
                continue;
            }
            // Walk the ladder downward from the planned resolution: the
            // largest bucket that fits the slack and meets the SSIM floor wins.
            let planned_resolution = plan.chosen_resolution;
            let mut candidates: Vec<usize> =
                ladder.iter().copied().filter(|&r| r <= planned_resolution).collect();
            candidates.sort_unstable_by(|a, b| b.cmp(a));
            let mut placed = false;
            for resolution in candidates {
                let service_ms = latency.estimate_ms(resolution) * request.cost_multiplier;
                if virtual_start + service_ms > request.deadline_ms {
                    continue;
                }
                let final_plan = if resolution == planned_resolution {
                    plan.clone()
                } else {
                    match self.pipeline.replan_at(request.sample, &plan, resolution) {
                        Ok(replanned) => replanned,
                        Err(error) => {
                            outcomes[index] = Some(SloOutcome::Failed(error));
                            placed = true;
                            break;
                        }
                    }
                };
                if let Some(floor) = self.options.ssim_floor {
                    if resolution != planned_resolution && final_plan.quality() < floor {
                        // Degrading this far would deliver unacceptable
                        // quality; cheaper buckets only read less.
                        break;
                    }
                }
                server_free_ms = virtual_start + service_ms;
                admitted.push(Admitted {
                    index,
                    plan: final_plan,
                    planned_resolution,
                    virtual_start_ms: virtual_start,
                    virtual_finish_ms: server_free_ms,
                });
                placed = true;
                break;
            }
            if !placed {
                outcomes[index] = Some(SloOutcome::Rejected(Rejected::Overloaded));
            }
        }

        // Stage 3: execute admitted requests as homogeneous resolution buckets
        // under per-request isolation, mirroring the batch scheduler.
        let max_batch = self.options.batch.max_batch.max(1);
        let chaos = self.options.chaos_panic_every;
        let mut buckets: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (slot, entry) in admitted.iter().enumerate() {
            buckets.entry(entry.plan.chosen_resolution).or_default().push(slot);
        }
        for (&resolution, members) in &buckets {
            let dispatch = self.pipeline.bucket_dispatch(resolution);
            for batch in members.chunks(max_batch) {
                let results = run_batch_isolated(self.pipeline, threads, batch.len(), |slot| {
                    let entry = &admitted[batch[slot]];
                    if let Some(every) = chaos {
                        if (entry.index + 1).is_multiple_of(every) {
                            panic!("chaos: injected panic in request {}", entry.index);
                        }
                    }
                    rescnn_tensor::with_algo_calibration_scope(Arc::clone(&dispatch), || {
                        self.pipeline.execute_unscoped(queue[entry.index].sample, &entry.plan)
                    })
                });
                for (slot, result) in results.into_iter().enumerate() {
                    let entry = &admitted[batch[slot]];
                    outcomes[entry.index] = Some(match result {
                        Ok(record) => SloOutcome::Completed(CompletedRequest {
                            record,
                            planned_resolution: entry.planned_resolution,
                            served_resolution: entry.plan.chosen_resolution,
                            virtual_start_ms: entry.virtual_start_ms,
                            virtual_finish_ms: entry.virtual_finish_ms,
                            virtual_latency_ms: entry.virtual_finish_ms
                                - queue[entry.index].arrival_ms,
                        }),
                        Err(error) => SloOutcome::Failed(error),
                    });
                }
            }
        }
        drop(admitted);

        // Stage 4: aggregate in submission order.
        let outcomes: Vec<SloOutcome> = outcomes
            .into_iter()
            .map(|outcome| outcome.expect("every request has an outcome"))
            .collect();
        let total = outcomes.len();
        let mut completed_records: Vec<InferenceRecord> = Vec::new();
        let mut latencies: Vec<f64> = Vec::new();
        let mut ssim_sum = 0.0f64;
        let (mut completed, mut shed, mut expired, mut faulted) = (0usize, 0usize, 0usize, 0usize);
        for outcome in &outcomes {
            match outcome {
                SloOutcome::Completed(done) => {
                    completed += 1;
                    ssim_sum += done.record.quality;
                    latencies.push(done.virtual_latency_ms);
                    completed_records.push(done.record);
                }
                SloOutcome::Rejected(Rejected::Overloaded) => shed += 1,
                SloOutcome::Rejected(Rejected::DeadlineExceeded) => expired += 1,
                SloOutcome::Failed(_) => faulted += 1,
            }
        }
        // Only requests that actually completed count as degraded (a degraded
        // admission that then faulted is a fault, not a degradation).
        let degraded = outcomes
            .iter()
            .filter(
                |o| matches!(o, SloOutcome::Completed(c) if c.served_resolution < c.planned_resolution),
            )
            .count();
        latencies.sort_by(f64::total_cmp);
        let report = PipelineReport::from_records("slo".to_string(), &completed_records);
        let totalf = total.max(1) as f64;
        Ok(SloReport {
            report,
            outcomes,
            total,
            completed,
            degraded,
            shed,
            expired,
            faulted,
            goodput: completed as f64 / totalf,
            shed_rate: shed as f64 / totalf,
            slo_violation_rate: (shed + expired + faulted) as f64 / totalf,
            p50_latency_ms: percentile(&latencies, 0.50),
            p99_latency_ms: percentile(&latencies, 0.99),
            mean_delivered_ssim: if completed > 0 { ssim_sum / completed as f64 } else { 0.0 },
            peak_backlog_ms,
            wall_seconds: wall_start.elapsed().as_secs_f64(),
            threads,
        })
    }
}

/// Nearest-rank percentile over an ascending-sorted slice (0 when empty).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_model_lookup_rounds_up_then_falls_back() {
        let model = ResolutionLatencyModel::from_estimates([(112, 4.0), (224, 16.0)]);
        assert_eq!(model.estimate_ms(112), 4.0);
        assert_eq!(model.estimate_ms(150), 16.0, "unknown resolutions round up");
        assert_eq!(model.estimate_ms(448), 16.0, "beyond the ladder falls back to the largest");
        let empty = ResolutionLatencyModel::from_estimates([]);
        assert_eq!(empty.estimate_ms(224), 0.0);
        let negative = ResolutionLatencyModel::from_estimates([(64, -3.0)]);
        assert_eq!(negative.estimate_ms(64), 0.0, "estimates clamp to non-negative");
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let values = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&values, 0.50), 2.0);
        assert_eq!(percentile(&values, 0.99), 4.0);
        assert_eq!(percentile(&values, 0.25), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn options_builders() {
        let options = SloOptions::default();
        assert!(options.ssim_floor.is_none());
        assert!(options.latency.is_none());
        assert!(options.chaos_panic_every.is_none());
        let options = SloOptions::default()
            .with_ssim_floor(0.9)
            .with_latency_model(ResolutionLatencyModel::from_estimates([(112, 1.0)]))
            .with_chaos_panic_every(0);
        assert_eq!(options.ssim_floor, Some(0.9));
        assert_eq!(options.chaos_panic_every, Some(1), "chaos interval clamps to 1");
        assert!(options.latency.is_some());
    }

    #[test]
    fn request_builders_clamp() {
        let sample =
            rescnn_data::DatasetSpec::cars_like().with_len(1).with_max_dimension(48).build(1);
        let request = SloRequest::new(&sample[0], 1.0, 9.0).with_cost_multiplier(-2.0);
        assert_eq!(request.cost_multiplier, 0.0);
        assert_eq!(request.arrival_ms, 1.0);
        assert_eq!(request.deadline_ms, 9.0);
        assert!(request.storage.is_none());
    }
}
