//! SLO-aware serving: deadlines, admission control, load-shedding via
//! resolution degradation, and per-request fault isolation.
//!
//! The paper's central lever — resolution — is exactly the knob a serving
//! system can turn *per request, at admission time* when it is about to miss a
//! deadline: executing at 224² instead of 448² cuts backbone cost roughly 4×
//! while the calibrated storage policy keeps delivered SSIM above a
//! deployment-chosen floor. The [`SloScheduler`] builds that policy on top of
//! the resolution-bucketed [`BatchScheduler`](crate::BatchScheduler) machinery:
//!
//! 1. **Plan.** Every request is planned (preview read + scale model) under a
//!    per-request fault-isolation boundary, committing it to a *planned*
//!    resolution. A corrupt stream or a panic becomes a
//!    [`SloOutcome::Failed`] record; every other request proceeds.
//! 2. **Admit.** Requests are walked in arrival order over a deterministic
//!    *virtual clock*: a single virtual server whose per-request service time
//!    comes from a [`ResolutionLatencyModel`] (calibrated measurements when
//!    available, the analytic roofline otherwise). A request whose queueing
//!    delay alone exceeds its deadline has already expired
//!    ([`Rejected::DeadlineExceeded`]). Otherwise the scheduler picks the
//!    *largest* resolution — never above the plan's — whose estimated service
//!    fits the remaining slack **and** whose re-planned delivered SSIM meets
//!    [`SloOptions::ssim_floor`]; picking below the planned resolution is
//!    *degradation*, counted in [`SloReport::degraded`]. Only when no such
//!    resolution exists is the request shed ([`Rejected::Overloaded`]).
//! 3. **Execute.** Admitted requests are bucketed by their final resolution and
//!    executed as homogeneous batches over the persistent pool, again with
//!    per-request isolation: one panicking or failing request yields its own
//!    [`SloOutcome::Failed`] while the rest of its batch completes.
//!
//! # Resilient lifecycle (all opt-in)
//!
//! Four policies extend the lifecycle without touching its determinism; with
//! every policy `None` the scheduler behaves exactly as before, bit for bit:
//!
//! * **Retry with demotion** ([`RetryPolicy`]): a failed attempt is
//!   re-admitted after a virtual-clock backoff, preferentially *one rung
//!   below* the resolution that failed (bounded by the SSIM floor) — recovery
//!   uses the same lever as load-shedding.
//! * **Circuit breaking** ([`CircuitBreakerPolicy`]): requests tagged with a
//!   [`SourceId`] are gated per source; repeated failures trip an open state
//!   that sheds that source *before any decode or plan compute*
//!   ([`Rejected::CircuitOpen`]), then a half-open probe tests recovery after
//!   a cooldown.
//! * **Watchdog cancellation** ([`WatchdogPolicy`]): an admission whose
//!   charged service would overrun the latency-model estimate is capped and
//!   the execution cooperatively cancelled — a pre-fired
//!   [`CancellationToken`](rescnn_tensor::CancellationToken) is refused at the
//!   execute stage's task boundary, so no backbone compute is spent.
//! * **Precision demotion** ([`SloOptions::with_precision_demotion`]): a rung
//!   whose f32 estimate misses the deadline may serve quantized (int8) *at the
//!   same resolution* — tried before the walk steps a rung down — but only at
//!   resolutions the end-to-end accuracy gate
//!   ([`PrecisionGate`](crate::PrecisionGate)) admitted; demoted requests
//!   execute under a scoped int8 dispatch table and are counted in
//!   [`SloReport::precision_demoted`].
//! * **Memory-budget backpressure** ([`SloOptions::memory_budget_bytes`]):
//!   rungs whose planned activation-arena peak
//!   ([`DynamicResolutionPipeline::arena_peak_bytes`]) exceeds the budget are
//!   skipped at admission — the budget demotes down the ladder exactly like a
//!   deadline, shedding only when no rung fits.
//!
//! Because every admission decision is a pure function of the plans, the
//! latency model, and the requests' virtual arrival/deadline stamps — never of
//! wall-clock time — the entire report (outcomes, degradations, sheds,
//! retries, breaker trips, latency percentiles) is bitwise reproducible across
//! thread budgets; [`SloReport::wall_seconds`] is the only
//! wall-clock-dependent field.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;

use rescnn_data::Sample;
use rescnn_hwsim::{CalibratedCostModel, CpuProfile};
use rescnn_projpeg::ProgressiveImage;

use crate::error::{CoreError, Result};
use crate::lifecycle::{
    CircuitBreaker, CircuitBreakerPolicy, RetryPolicy, SourceId, WatchdogPolicy,
};
use crate::pipeline::{DynamicResolutionPipeline, InferencePlan, InferenceRecord, PipelineReport};
use crate::precision::PrecisionGate;
use crate::serve::{run_batch_isolated, BatchOptions};
use crate::trace::{ServingTrace, TraceDecision, TraceRequest};

/// Cancellation reason the drain deadline settles stragglers with. Shared with
/// trace replay so a replayed hard-cancel settles byte-identical errors.
pub(crate) const DRAIN_CANCEL_REASON: &str =
    "server drain deadline exceeded; pending work cancelled before execution";

/// The precision-demotion policy: the accuracy gate that says *where*
/// quantized execution is allowed, and the service-time model that says what
/// it costs. See [`SloOptions::with_precision_demotion`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PrecisionDemotion {
    /// End-to-end accuracy gate; rungs it did not admit never run quantized,
    /// no matter how late the queue is running.
    pub gate: PrecisionGate,
    /// Estimated quantized service milliseconds per resolution (the int8
    /// counterpart of [`SloOptions::latency`]).
    pub latency: ResolutionLatencyModel,
}

/// One serving request with its SLO contract, timed on the virtual clock.
#[derive(Debug, Clone)]
pub struct SloRequest<'a> {
    /// The sample to serve.
    pub sample: &'a Sample,
    /// Caller-supplied progressive stream (possibly corrupt); `None` encodes
    /// from the rendered sample.
    storage: Option<ProgressiveImage>,
    /// Arrival time on the virtual clock, in milliseconds.
    pub arrival_ms: f64,
    /// Absolute completion deadline on the virtual clock, in milliseconds.
    pub deadline_ms: f64,
    /// Multiplier on the request's estimated service time (a fault-injection
    /// hook: latency spikes, slow tenants). `1.0` is nominal.
    pub cost_multiplier: f64,
    /// Originating source (client/tenant), for per-source circuit breaking.
    /// `None` opts the request out of breaker gating.
    pub source: Option<SourceId>,
}

impl<'a> SloRequest<'a> {
    /// A request arriving at `arrival_ms` that must complete by `deadline_ms`.
    pub fn new(sample: &'a Sample, arrival_ms: f64, deadline_ms: f64) -> Self {
        SloRequest {
            sample,
            storage: None,
            arrival_ms,
            deadline_ms,
            cost_multiplier: 1.0,
            source: None,
        }
    }

    /// Tags the request with its originating source for per-source circuit
    /// breaking.
    pub fn with_source(mut self, source: SourceId) -> Self {
        self.source = Some(source);
        self
    }

    /// Serves a caller-supplied stored stream instead of re-encoding the sample
    /// — the path by which corrupt or truncated streams enter the scheduler.
    pub fn with_storage(mut self, storage: ProgressiveImage) -> Self {
        self.storage = Some(storage);
        self
    }

    /// Scales the request's estimated service time (≥ 0; a fault-injection
    /// latency spike).
    pub fn with_cost_multiplier(mut self, multiplier: f64) -> Self {
        self.cost_multiplier = multiplier.max(0.0);
        self
    }

    pub(crate) fn into_queued(self) -> QueuedRequest<'a> {
        QueuedRequest {
            sample: SampleRef::Borrowed(self.sample),
            storage: self.storage,
            arrival_ms: self.arrival_ms,
            deadline_ms: self.deadline_ms,
            cost_multiplier: self.cost_multiplier,
            source: self.source,
        }
    }
}

/// How a queued request holds its sample: borrowed for the duration of a batch
/// drain ([`SloScheduler`]), shared for requests that outlive their submitter
/// (the real-clock [`SloServer`](crate::SloServer)).
#[derive(Debug, Clone)]
pub(crate) enum SampleRef<'a> {
    /// Borrowed from the caller.
    Borrowed(&'a Sample),
    /// Shared ownership across threads.
    Shared(Arc<Sample>),
}

impl SampleRef<'_> {
    fn get(&self) -> &Sample {
        match self {
            SampleRef::Borrowed(sample) => sample,
            SampleRef::Shared(sample) => sample,
        }
    }
}

/// A request as the admission core owns it — the meeting point of the
/// borrowed-sample batch path and the owned-sample server path.
#[derive(Debug, Clone)]
pub(crate) struct QueuedRequest<'a> {
    pub(crate) sample: SampleRef<'a>,
    pub(crate) storage: Option<ProgressiveImage>,
    pub(crate) arrival_ms: f64,
    pub(crate) deadline_ms: f64,
    pub(crate) cost_multiplier: f64,
    pub(crate) source: Option<SourceId>,
}

/// Deterministic per-resolution service-time estimates, in milliseconds.
///
/// The admission controller needs an *a-priori* cost for "one request at
/// resolution r" that never depends on wall-clock noise; this model supplies
/// it, either from explicit estimates or from a
/// [`CalibratedCostModel`](rescnn_hwsim::CalibratedCostModel) (exact
/// measurements where swept, the analytic roofline elsewhere).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ResolutionLatencyModel {
    /// Estimated milliseconds per request, keyed by resolution.
    entries: BTreeMap<usize, f64>,
}

impl ResolutionLatencyModel {
    /// Builds the model from explicit `(resolution, milliseconds)` estimates.
    pub fn from_estimates(estimates: impl IntoIterator<Item = (usize, f64)>) -> Self {
        ResolutionLatencyModel {
            entries: estimates.into_iter().map(|(r, ms)| (r, ms.max(0.0))).collect(),
        }
    }

    /// Predicts each resolution's forward cost for `pipeline`'s backbone from a
    /// cost model (calibrated or purely analytic).
    ///
    /// # Errors
    /// Returns an error if a resolution is unservable by the backbone.
    pub fn from_cost_model(
        model: &CalibratedCostModel,
        pipeline: &DynamicResolutionPipeline,
    ) -> Result<Self> {
        let config = pipeline.config();
        let arch = config.backbone.arch(config.dataset.num_classes());
        let mut entries = BTreeMap::new();
        for &resolution in &config.resolutions {
            let layers = arch.conv_layers(resolution).map_err(|e| CoreError::InvalidConfig {
                reason: format!("latency model at {resolution}: {e}"),
            })?;
            entries.insert(resolution, model.predict_forward_seconds(&layers) * 1e3);
        }
        Ok(ResolutionLatencyModel { entries })
    }

    /// The analytic-roofline model for the host CPU — the default when no
    /// calibration has been recorded.
    ///
    /// # Errors
    /// Returns an error if a resolution is unservable by the backbone.
    pub fn analytic(pipeline: &DynamicResolutionPipeline) -> Result<Self> {
        Self::from_cost_model(&CalibratedCostModel::new(CpuProfile::host()), pipeline)
    }

    /// Estimated service milliseconds at `resolution` (the nearest modelled
    /// resolution at or above it when the exact one is absent, the largest
    /// modelled one otherwise, `0` for an empty model).
    pub fn estimate_ms(&self, resolution: usize) -> f64 {
        if let Some(ms) = self.entries.get(&resolution) {
            return *ms;
        }
        self.entries
            .range(resolution..)
            .next()
            .or_else(|| self.entries.iter().next_back())
            .map_or(0.0, |(_, ms)| *ms)
    }
}

/// Why a request was rejected without executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Rejected {
    /// The request's queueing delay alone exceeded its deadline: it expired
    /// before the server could start it.
    DeadlineExceeded,
    /// Even the cheapest acceptable resolution (the SSIM floor's bucket) could
    /// not finish within the deadline; the request was shed to protect the
    /// rest of the queue.
    Overloaded,
    /// The request's source had its circuit breaker open: it was shed at the
    /// gate, before any decode or plan compute was spent on it.
    CircuitOpen,
}

/// What happened to one request, in submission order.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum SloOutcome {
    /// The request executed; timing and the (possibly degraded) resolution are
    /// in the payload.
    Completed(CompletedRequest),
    /// Admission control rejected the request.
    Rejected(Rejected),
    /// The request's own plan/execute stage failed (codec error on its stream,
    /// contained panic, …); every other request was unaffected.
    Failed(CoreError),
}

/// Timing and outcome detail of a completed request.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CompletedRequest {
    /// The inference outcome (resolution, bytes, correctness, quality).
    pub record: InferenceRecord,
    /// Resolution the scale model originally planned.
    pub planned_resolution: usize,
    /// Resolution actually served (≤ planned; `<` means degraded).
    pub served_resolution: usize,
    /// When service began on the virtual clock.
    pub virtual_start_ms: f64,
    /// When service finished on the virtual clock.
    pub virtual_finish_ms: f64,
    /// Virtual finish minus the *original* arrival: the latency the client
    /// observed, backoff and failed attempts included.
    pub virtual_latency_ms: f64,
    /// Retries it took to complete (0 = succeeded on the first attempt; > 0
    /// means a failure was recovered by [`RetryPolicy`]).
    pub retries: usize,
}

/// Policy knobs for the SLO scheduler.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct SloOptions {
    /// Batching/thread/strictness knobs shared with the batch scheduler.
    pub batch: BatchOptions,
    /// Minimum delivered SSIM a degraded request may be served at. `None`
    /// allows degrading to the cheapest resolution of the ladder.
    pub ssim_floor: Option<f64>,
    /// Service-time estimates; `None` builds the analytic model for the host.
    pub latency: Option<ResolutionLatencyModel>,
    /// Fault-injection hook: panic inside the execute stage of every `n`-th
    /// admitted request (1-based submission count; first attempts only, so
    /// retries model recovery from a transient fault). Exercises the panic
    /// containment path deterministically; `None` in production.
    pub chaos_panic_every: Option<usize>,
    /// Fault-injection hook: panic inside the execute stage of exactly these
    /// submission indices (first attempts only). Kept sorted and deduplicated;
    /// empty in production.
    pub chaos_panic_requests: Vec<usize>,
    /// Bounded retry with virtual-clock backoff and resolution demotion;
    /// `None` (the default) fails requests on their first error.
    pub retry: Option<RetryPolicy>,
    /// Per-[`SourceId`] circuit breaking; `None` (the default) never gates.
    pub breaker: Option<CircuitBreakerPolicy>,
    /// Watchdog cancellation of executions overrunning the latency-model
    /// estimate; `None` (the default) lets overruns run (and be charged) in
    /// full.
    pub watchdog: Option<WatchdogPolicy>,
    /// Activation-arena byte budget: admission skips rungs whose planned peak
    /// exceeds it, demoting down the ladder like a deadline. `None` (the
    /// default) never constrains.
    pub memory_budget_bytes: Option<usize>,
    /// Precision demotion: when a rung's f32 estimate misses the deadline,
    /// admission tries the quantized estimate *at the same rung* — but only
    /// where the accuracy gate admits it — before stepping down the
    /// resolution ladder. `None` (the default) never trades precision.
    pub precision: Option<PrecisionDemotion>,
}

impl SloOptions {
    /// Sets the batching options.
    pub fn with_batch(mut self, batch: BatchOptions) -> Self {
        self.batch = batch;
        self
    }

    /// Sets the minimum delivered SSIM degradation may serve at.
    pub fn with_ssim_floor(mut self, floor: f64) -> Self {
        self.ssim_floor = Some(floor);
        self
    }

    /// Supplies explicit service-time estimates.
    pub fn with_latency_model(mut self, model: ResolutionLatencyModel) -> Self {
        self.latency = Some(model);
        self
    }

    /// Enables deterministic panic injection (every `n`-th request).
    pub fn with_chaos_panic_every(mut self, n: usize) -> Self {
        self.chaos_panic_every = Some(n.max(1));
        self
    }

    /// Enables deterministic panic injection at exactly these submission
    /// indices (first attempts only).
    pub fn with_chaos_panic_requests(mut self, mut indices: Vec<usize>) -> Self {
        indices.sort_unstable();
        indices.dedup();
        self.chaos_panic_requests = indices;
        self
    }

    /// Enables bounded retry with demotion.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Enables per-source circuit breaking.
    pub fn with_breaker(mut self, policy: CircuitBreakerPolicy) -> Self {
        self.breaker = Some(policy);
        self
    }

    /// Enables watchdog cancellation of estimate-overrunning executions.
    pub fn with_watchdog(mut self, policy: WatchdogPolicy) -> Self {
        self.watchdog = Some(policy);
        self
    }

    /// Caps the activation-arena bytes admission may plan for.
    pub fn with_memory_budget_bytes(mut self, bytes: usize) -> Self {
        self.memory_budget_bytes = Some(bytes);
        self
    }

    /// Enables precision demotion: resolution stays the primary lever, but a
    /// rung whose f32 estimate misses the deadline may run quantized —
    /// keeping its resolution — when `gate` admits that rung and the `latency`
    /// model says the quantized forward fits the slack. Preserves the rung
    /// order of the ladder walk: int8-at-rung-r is tried *before* f32 at the
    /// next rung down, because serving full resolution at reduced precision
    /// degrades accuracy less than dropping a resolution rung (the gate
    /// guarantees as much, or it would not have admitted the rung).
    pub fn with_precision_demotion(
        mut self,
        gate: PrecisionGate,
        latency: ResolutionLatencyModel,
    ) -> Self {
        self.precision = Some(PrecisionDemotion { gate, latency });
        self
    }
}

/// The outcome of draining an [`SloScheduler`] queue.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SloReport {
    /// Aggregate accuracy/cost report over the *completed* requests, folded in
    /// submission order.
    pub report: PipelineReport,
    /// Per-request outcome, in submission order.
    pub outcomes: Vec<SloOutcome>,
    /// Requests submitted.
    pub total: usize,
    /// Requests that executed to completion.
    pub completed: usize,
    /// Completed requests served below their planned resolution.
    pub degraded: usize,
    /// Requests shed by admission control ([`Rejected::Overloaded`]).
    pub shed: usize,
    /// Requests that expired in the queue ([`Rejected::DeadlineExceeded`]).
    pub expired: usize,
    /// Requests isolated after their own stage failed or panicked (their final
    /// attempt, when retrying).
    pub faulted: usize,
    /// Completed requests whose first attempt failed — failures the
    /// [`RetryPolicy`] converted into completions.
    pub recovered: usize,
    /// Retry attempts scheduled across the run.
    pub retry_attempts: usize,
    /// Requests shed at the gate by an open circuit breaker
    /// ([`Rejected::CircuitOpen`]); disjoint from [`shed`](Self::shed).
    pub breaker_shed: usize,
    /// Times any source's breaker tripped open.
    pub breaker_trips: usize,
    /// Executions cancelled by the watchdog before spending compute.
    pub watchdog_cancelled: usize,
    /// Completed requests served below a rung the memory budget vetoed.
    pub memory_demoted: usize,
    /// Completed requests served on the quantized (int8) arm because their
    /// rung's f32 estimate missed the deadline.
    pub precision_demoted: usize,
    /// Completed requests / total — the headline goodput.
    pub goodput: f64,
    /// Shed requests / total.
    pub shed_rate: f64,
    /// Requests that did not complete within their deadline / total
    /// (expired + shed + breaker-shed + faulted; admitted requests meet their
    /// deadline by construction of the admission test).
    pub slo_violation_rate: f64,
    /// Median virtual latency of completed requests, in milliseconds.
    pub p50_latency_ms: f64,
    /// 99th-percentile virtual latency of completed requests, in milliseconds.
    pub p99_latency_ms: f64,
    /// Mean delivered SSIM over completed requests.
    pub mean_delivered_ssim: f64,
    /// Largest queueing backlog any request saw at arrival, in virtual ms.
    pub peak_backlog_ms: f64,
    /// Real wall-clock seconds the run took (informational only; every other
    /// field is wall-clock-independent).
    pub wall_seconds: f64,
    /// Thread budget the scheduler distributed.
    pub threads: usize,
}

/// Deadline- and load-aware serving scheduler over one pipeline.
///
/// # Examples
/// ```no_run
/// use rescnn_core::{DynamicResolutionPipeline, SloOptions, SloRequest, SloScheduler};
/// # fn demo(pipeline: &DynamicResolutionPipeline, data: &rescnn_data::Dataset)
/// #     -> rescnn_core::Result<()> {
/// let mut scheduler = SloScheduler::new(pipeline, SloOptions::default().with_ssim_floor(0.85));
/// for (i, sample) in data.iter().enumerate() {
///     let arrival = i as f64 * 2.0;
///     scheduler.submit(SloRequest::new(sample, arrival, arrival + 50.0));
/// }
/// let outcome = scheduler.run()?;
/// println!("goodput {:.3}, degraded {}, shed {}", outcome.goodput, outcome.degraded, outcome.shed);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SloScheduler<'a> {
    pipeline: &'a DynamicResolutionPipeline,
    options: SloOptions,
    queue: Vec<SloRequest<'a>>,
}

/// The plan a retry inherits from its failed predecessor: execute-stage
/// failures keep their (possibly degraded) plan and demote from its rung;
/// plan-stage failures carry nothing and re-plan from scratch.
#[derive(Debug)]
struct PriorAttempt {
    plan: InferencePlan,
    served_resolution: usize,
    planned_resolution: usize,
}

/// One scheduled attempt of a request's lifecycle: attempt 0 is the original
/// admission, higher attempts are retries re-admitted after a virtual-clock
/// backoff.
#[derive(Debug)]
struct PendingAttempt {
    /// Submission index.
    index: usize,
    /// 0-based attempt number.
    attempt: usize,
    /// Arrival on the virtual clock (the original arrival for attempt 0, the
    /// prior failure's finish plus backoff for retries).
    arrival_ms: f64,
    prior: Option<PriorAttempt>,
    /// The error that scheduled this retry (`None` only for attempt 0).
    last_error: Option<CoreError>,
}

/// Post-admission state of one attempt.
#[derive(Debug)]
struct AdmittedAttempt {
    /// Position in the round's attempt list.
    slot: usize,
    /// Admission sequence within the round (virtual-server order), the order
    /// execute outcomes are fed to the circuit breakers in.
    seq: usize,
    plan: InferencePlan,
    planned_resolution: usize,
    virtual_start_ms: f64,
    virtual_finish_ms: f64,
    /// Watchdog-flagged: charged the capped overrun and cooperatively
    /// cancelled before any backbone compute.
    cancelled: bool,
    /// Admitted onto the quantized arm (precision demotion): executes under
    /// the int8 bucket-dispatch table and was charged the int8 estimate.
    int8: bool,
}

/// Plan-stage verdict for one attempt under breaker gating.
#[derive(Debug)]
enum Gate {
    /// Shed at the gate by an open breaker; no decode or plan compute spent.
    Shed,
    /// Admitted past the gate; the plan stage ran.
    Plan(Result<InferencePlan>),
}

/// One breaker-gated planning group: a source's attempts walked sequentially
/// (so gating sees failures inline, in arrival order), or a single unsourced
/// attempt.
#[derive(Debug)]
struct PlanGroup {
    source: Option<SourceId>,
    breaker: Option<CircuitBreaker>,
    /// Positions in the round's attempt list, ascending by (arrival, index).
    slots: Vec<usize>,
}

impl<'a> SloScheduler<'a> {
    /// Creates a scheduler serving one pipeline.
    pub fn new(pipeline: &'a DynamicResolutionPipeline, options: SloOptions) -> Self {
        SloScheduler { pipeline, options, queue: Vec::new() }
    }

    /// Enqueues one request, returning its submission index. Outcomes are
    /// always reported in submission order.
    pub fn submit(&mut self, request: SloRequest<'a>) -> usize {
        self.queue.push(request);
        self.queue.len() - 1
    }

    /// Number of requests currently queued.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    fn thread_budget(&self) -> usize {
        thread_budget(self.pipeline, &self.options)
    }

    /// Drains the queue: plans, admits over the virtual clock, executes, and
    /// aggregates.
    ///
    /// # Errors
    /// Returns an error only if the queue is empty or no latency model could be
    /// built; per-request failures are isolated into [`SloOutcome::Failed`].
    pub fn run(&mut self) -> Result<SloReport> {
        Ok(self.run_inner(false)?.0)
    }

    /// Like [`run`](Self::run), additionally recording a replayable
    /// [`ServingTrace`] of the drain.
    ///
    /// # Errors
    /// Same as [`run`](Self::run).
    pub fn run_recorded(&mut self) -> Result<(SloReport, ServingTrace)> {
        let (report, trace) = self.run_inner(true)?;
        Ok((report, trace.expect("a recording run produces a trace")))
    }

    fn run_inner(&mut self, record: bool) -> Result<(SloReport, Option<ServingTrace>)> {
        if self.queue.is_empty() {
            return Err(CoreError::EmptyDataset);
        }
        let wall_start = Instant::now();
        let queue = std::mem::take(&mut self.queue);
        let threads = self.thread_budget();
        let mut core = AdmissionCore::new(self.pipeline, self.options.clone(), threads, record)?;
        for request in queue {
            core.submit(request.into_queued());
        }
        // A batch drain is the degenerate real-clock run: every step happens
        // at `now = ∞`, so each step drains everything currently pending (all
        // first attempts in round 0, each round's retries thereafter) —
        // exactly the rounds loop this core was extracted from, bit for bit.
        while core.has_pending() {
            core.admit_step(f64::INFINITY);
        }
        Ok(core.finish(wall_start.elapsed().as_secs_f64()))
    }

    /// Replays a recorded [`ServingTrace`] through the virtual-clock core.
    ///
    /// Queued requests supply the payloads (samples, caller-supplied storage)
    /// in submission order; the trace supplies every timing input — the
    /// arrival/deadline/cost/source stamps, the submission/step interleaving,
    /// and each step's `now`. For a gracefully drained trace
    /// ([`ServingTrace::replayable`]) the admission decisions of the returned
    /// report — and the returned re-recorded trace's
    /// [`decisions`](ServingTrace::decisions) — are bitwise identical to the
    /// live run's, across thread budgets.
    ///
    /// # Errors
    /// Returns an error if the queued request count does not match the trace,
    /// the queue is empty, or no latency model could be built.
    pub fn replay(&mut self, trace: &ServingTrace) -> Result<(SloReport, ServingTrace)> {
        if self.queue.len() != trace.requests.len() {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "replay: {} queued requests but the trace recorded {}",
                    self.queue.len(),
                    trace.requests.len()
                ),
            });
        }
        if self.queue.is_empty() {
            return Err(CoreError::EmptyDataset);
        }
        let wall_start = Instant::now();
        let queue = std::mem::take(&mut self.queue);
        let threads = self.thread_budget();
        let mut core = AdmissionCore::new(self.pipeline, self.options.clone(), threads, true)?;
        let mut feed = queue
            .into_iter()
            .zip(trace.requests.iter())
            .map(|(request, stamps)| {
                let mut queued = request.into_queued();
                queued.arrival_ms = stamps.arrival_ms;
                queued.deadline_ms = stamps.deadline_ms;
                queued.cost_multiplier = stamps.cost_multiplier;
                queued.source = stamps.source.map(SourceId);
                (queued, stamps.enqueued_step)
            })
            .peekable();
        for (step, &now_ms) in trace.steps.iter().enumerate() {
            while let Some((queued, _)) = feed.next_if(|(_, enqueued)| *enqueued <= step) {
                core.submit(queued);
            }
            core.admit_step(now_ms);
        }
        // Requests recorded after the final step (arrivals the live run never
        // stepped past) plus any hand-authored tail.
        for (queued, _) in feed {
            core.submit(queued);
        }
        if trace.hard_cancelled {
            core.cancel_pending(DRAIN_CANCEL_REASON);
        } else {
            while core.has_pending() {
                core.admit_step(f64::INFINITY);
            }
        }
        let (report, replayed) = core.finish(wall_start.elapsed().as_secs_f64());
        Ok((report, replayed.expect("a replay records its own trace")))
    }
}

/// The scheduler's thread budget: explicit batch option, else the pipeline's
/// engine context, else the engine default.
pub(crate) fn thread_budget(pipeline: &DynamicResolutionPipeline, options: &SloOptions) -> usize {
    options
        .batch
        .threads
        .or(pipeline.engine_context().threads)
        .unwrap_or_else(rescnn_tensor::num_threads)
        .max(1)
}

/// The incremental admission core: one shared virtual server stepped by
/// explicit `now` values.
///
/// Both serving modes drive this one state machine. The batch
/// [`SloScheduler::run`] submits everything and steps at `now = ∞` until the
/// pending set drains — the original run-to-completion rounds loop. The
/// real-clock [`SloServer`](crate::SloServer) submits requests as they arrive
/// and steps at wall `now`, so a request joins whatever resolution bucket is
/// forming at the next step (continuous batching) instead of waiting for a
/// full drain. Every admission decision is a pure function of the submitted
/// stamps and the step sequence — never of the wall clock — which is what
/// makes recorded runs replayable bitwise.
#[derive(Debug)]
pub(crate) struct AdmissionCore<'a> {
    pipeline: &'a DynamicResolutionPipeline,
    options: SloOptions,
    threads: usize,
    latency: ResolutionLatencyModel,
    arena_peaks: Option<BTreeMap<usize, usize>>,
    queue: Vec<QueuedRequest<'a>>,
    outcomes: Vec<Option<SloOutcome>>,
    memory_demoted_flag: Vec<bool>,
    precision_demoted_flag: Vec<bool>,
    breakers: BTreeMap<SourceId, CircuitBreaker>,
    pending: Vec<PendingAttempt>,
    server_free_ms: f64,
    peak_backlog_ms: f64,
    retry_attempts: usize,
    watchdog_cancelled: usize,
    trace: Option<ServingTrace>,
}

impl<'a> AdmissionCore<'a> {
    /// Resolves the fallible admission inputs up front — the latency model
    /// and, when a memory budget is set, every rung's planned
    /// activation-arena peak — keeping the per-request walk infallible (and
    /// letting the server fail in `start()` rather than on its worker
    /// thread).
    pub(crate) fn resolve_models(
        pipeline: &DynamicResolutionPipeline,
        options: &SloOptions,
    ) -> Result<(ResolutionLatencyModel, Option<BTreeMap<usize, usize>>)> {
        let latency = match &options.latency {
            Some(model) => model.clone(),
            None => ResolutionLatencyModel::analytic(pipeline)?,
        };
        let arena_peaks: Option<BTreeMap<usize, usize>> = match options.memory_budget_bytes {
            Some(_) => {
                let mut peaks = BTreeMap::new();
                for &resolution in &pipeline.config().resolutions {
                    peaks.insert(resolution, pipeline.arena_peak_bytes(resolution)?);
                }
                Some(peaks)
            }
            None => None,
        };
        Ok((latency, arena_peaks))
    }

    pub(crate) fn new(
        pipeline: &'a DynamicResolutionPipeline,
        options: SloOptions,
        threads: usize,
        record: bool,
    ) -> Result<Self> {
        let (latency, arena_peaks) = Self::resolve_models(pipeline, &options)?;
        Ok(Self::with_resolved(pipeline, options, threads, record, latency, arena_peaks))
    }

    pub(crate) fn with_resolved(
        pipeline: &'a DynamicResolutionPipeline,
        options: SloOptions,
        threads: usize,
        record: bool,
        latency: ResolutionLatencyModel,
        arena_peaks: Option<BTreeMap<usize, usize>>,
    ) -> Self {
        AdmissionCore {
            pipeline,
            options,
            threads,
            latency,
            arena_peaks,
            queue: Vec::new(),
            outcomes: Vec::new(),
            memory_demoted_flag: Vec::new(),
            precision_demoted_flag: Vec::new(),
            breakers: BTreeMap::new(),
            pending: Vec::new(),
            server_free_ms: 0.0,
            peak_backlog_ms: 0.0,
            retry_attempts: 0,
            watchdog_cancelled: 0,
            trace: record.then(ServingTrace::default),
        }
    }

    /// Accepts one request, scheduling its first attempt. Returns the
    /// submission index (the server's ticket value).
    pub(crate) fn submit(&mut self, request: QueuedRequest<'a>) -> usize {
        let index = self.queue.len();
        if let Some(trace) = &mut self.trace {
            trace.requests.push(TraceRequest {
                arrival_ms: request.arrival_ms,
                deadline_ms: request.deadline_ms,
                cost_multiplier: request.cost_multiplier,
                source: request.source.map(|s| s.0),
                enqueued_step: trace.steps.len(),
            });
        }
        self.pending.push(PendingAttempt {
            index,
            attempt: 0,
            arrival_ms: request.arrival_ms,
            prior: None,
            last_error: None,
        });
        self.queue.push(request);
        self.outcomes.push(None);
        self.memory_demoted_flag.push(false);
        self.precision_demoted_flag.push(false);
        index
    }

    /// Whether any attempt (first or retry) is still pending.
    pub(crate) fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Whether any pending attempt is eligible at `now_ms`.
    pub(crate) fn has_eligible(&self, now_ms: f64) -> bool {
        self.pending.iter().any(|attempt| attempt.arrival_ms <= now_ms)
    }

    /// Earliest pending arrival (the time the event loop should wake by).
    pub(crate) fn next_pending_arrival(&self) -> Option<f64> {
        self.pending.iter().map(|attempt| attempt.arrival_ms).min_by(f64::total_cmp)
    }

    /// The settled outcome of request `index`, when terminal.
    pub(crate) fn outcome(&self, index: usize) -> Option<&SloOutcome> {
        self.outcomes.get(index).and_then(Option::as_ref)
    }

    /// Settles every still-pending attempt as drain-cancelled without
    /// executing it, returning the indices settled (ascending). Marks the
    /// trace hard-cancelled: the tail of this run is no longer bitwise
    /// replayable.
    pub(crate) fn cancel_pending(&mut self, reason: &str) -> Vec<usize> {
        let drained = std::mem::take(&mut self.pending);
        let mut settled: Vec<usize> = Vec::with_capacity(drained.len());
        for attempt in drained {
            self.outcomes[attempt.index] =
                Some(SloOutcome::Failed(CoreError::Cancelled { reason: reason.to_string() }));
            settled.push(attempt.index);
        }
        settled.sort_unstable();
        if !settled.is_empty() {
            self.mark_hard_cancelled();
        }
        settled
    }

    /// Records that the run's drain deadline fired (in-flight executions were
    /// refused by a wall-timed token), so replay is best-effort from here.
    pub(crate) fn mark_hard_cancelled(&mut self) {
        if let Some(trace) = &mut self.trace {
            trace.hard_cancelled = true;
        }
    }

    /// Plans one request (preview read + scale model), honouring its
    /// caller-supplied storage when present.
    fn plan_request(&self, index: usize) -> Result<InferencePlan> {
        let request = &self.queue[index];
        match &request.storage {
            Some(encoded) => {
                self.pipeline.plan_with_storage_unscoped(request.sample.get(), encoded.clone())
            }
            None => self.pipeline.plan_unscoped(request.sample.get()),
        }
    }

    /// Runs one admission round over every pending attempt whose arrival is
    /// at or before `now_ms`: plan (under per-request isolation and breaker
    /// gating) → admit over the virtual clock → execute as homogeneous
    /// resolution buckets → settle, scheduling retries. Returns the indices
    /// of requests whose outcome became *terminal* this step (a provisional
    /// failure with a retry scheduled is not terminal), ascending.
    ///
    /// At `now_ms = ∞` one step is exactly one round of the original
    /// run-to-completion loop. At finite `now_ms` the step additionally
    /// enforces the wall-clock deadline: an eligible request whose deadline
    /// has already passed on the stepping clock expires without compute.
    pub(crate) fn admit_step(&mut self, now_ms: f64) -> Vec<usize> {
        let mut round: Vec<PendingAttempt> = Vec::new();
        let mut deferred: Vec<PendingAttempt> = Vec::new();
        for attempt in std::mem::take(&mut self.pending) {
            if attempt.arrival_ms <= now_ms {
                round.push(attempt);
            } else {
                deferred.push(attempt);
            }
        }
        self.pending = deferred;
        if round.is_empty() {
            return Vec::new();
        }
        if let Some(trace) = &mut self.trace {
            trace.steps.push(now_ms);
        }
        let pipeline = self.pipeline;
        let threads = self.threads;
        let max_batch = self.options.batch.max_batch.max(1);

        // Stage 1: plan every attempt that needs one (retries of execute
        // failures keep their plan) under per-request isolation.
        let need_plan: Vec<usize> = round
            .iter()
            .enumerate()
            .filter(|(_, attempt)| attempt.prior.is_none())
            .map(|(slot, _)| slot)
            .collect();
        let mut gates: Vec<Option<Gate>> = Vec::new();
        gates.resize_with(round.len(), || None);
        if let Some(policy) = &self.options.breaker {
            // Breaker gating needs each source's attempts walked in
            // arrival order with failures fed inline, so planning is
            // grouped per source (one isolated task per group — groups
            // still plan in parallel); unsourced attempts are ungated
            // singletons. A shed attempt is never decoded or planned.
            let mut sourced: BTreeMap<SourceId, Vec<usize>> = BTreeMap::new();
            let mut groups: Vec<PlanGroup> = Vec::new();
            for &slot in &need_plan {
                match self.queue[round[slot].index].source {
                    Some(source) => sourced.entry(source).or_default().push(slot),
                    None => {
                        groups.push(PlanGroup { source: None, breaker: None, slots: vec![slot] })
                    }
                }
            }
            for (source, mut slots) in sourced {
                slots.sort_by(|&a, &b| {
                    round[a]
                        .arrival_ms
                        .total_cmp(&round[b].arrival_ms)
                        .then_with(|| round[a].index.cmp(&round[b].index))
                });
                let breaker = self
                    .breakers
                    .entry(source)
                    .or_insert_with(|| CircuitBreaker::new(policy.clone()))
                    .clone();
                groups.push(PlanGroup { source: Some(source), breaker: Some(breaker), slots });
            }
            let group_outcomes = run_batch_isolated(pipeline, threads, groups.len(), |g| {
                let group = &groups[g];
                let mut breaker = group.breaker.clone();
                let mut walked: Vec<(usize, Gate)> = Vec::with_capacity(group.slots.len());
                for &slot in &group.slots {
                    let attempt = &round[slot];
                    if let Some(b) = breaker.as_mut() {
                        if !b.admit(attempt.arrival_ms) {
                            walked.push((slot, Gate::Shed));
                            continue;
                        }
                    }
                    // Panics are contained per member, not per group:
                    // one poisoned stream must not fail its source's
                    // healthy neighbours.
                    let planned = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        self.plan_request(attempt.index)
                    }))
                    .unwrap_or_else(|payload| {
                        Err(CoreError::Panicked { message: rescnn_tensor::panic_message(payload) })
                    });
                    if let Some(b) = breaker.as_mut() {
                        match &planned {
                            Ok(_) => b.note_progress(),
                            Err(_) => b.record_failure(attempt.arrival_ms),
                        }
                    }
                    walked.push((slot, Gate::Plan(planned)));
                }
                Ok((walked, breaker))
            });
            for (g, outcome) in group_outcomes.into_iter().enumerate() {
                let group = &groups[g];
                match outcome {
                    Ok((walked, breaker)) => {
                        if let (Some(source), Some(breaker)) = (group.source, breaker) {
                            self.breakers.insert(source, breaker);
                        }
                        for (slot, gate) in walked {
                            gates[slot] = Some(gate);
                        }
                    }
                    // The walk itself failing (members are caught
                    // individually) fails the whole group.
                    Err(error) => {
                        for &slot in &group.slots {
                            gates[slot] = Some(Gate::Plan(Err(error.clone())));
                        }
                    }
                }
            }
        } else {
            // No breaker: the flat data-parallel plan stage (identical in
            // structure — and in round 0, in per-task work — to the
            // policy-free scheduler).
            let planned = run_batch_isolated(pipeline, threads, need_plan.len(), |i| {
                self.plan_request(round[need_plan[i]].index)
            });
            for (i, outcome) in planned.into_iter().enumerate() {
                gates[need_plan[i]] = Some(Gate::Plan(outcome));
            }
        }

        // Resolve gates: sheds and final plan failures settle now; plan
        // failures with retry budget re-plan next round from scratch.
        let mut viable: Vec<(usize, InferencePlan)> = Vec::new();
        for (slot, attempt) in round.iter().enumerate() {
            if let Some(prior) = &attempt.prior {
                viable.push((slot, prior.plan.clone()));
                continue;
            }
            match gates[slot].take().expect("every plan-needing attempt was gated") {
                Gate::Shed => {
                    self.outcomes[attempt.index] =
                        Some(SloOutcome::Rejected(Rejected::CircuitOpen));
                }
                Gate::Plan(Ok(plan)) => viable.push((slot, plan)),
                Gate::Plan(Err(error)) => {
                    if let Some(policy) = &self.options.retry {
                        if attempt.attempt < policy.max_retries {
                            let next_arrival =
                                attempt.arrival_ms + policy.backoff_for(attempt.attempt);
                            if next_arrival < self.queue[attempt.index].deadline_ms {
                                self.pending.push(PendingAttempt {
                                    index: attempt.index,
                                    attempt: attempt.attempt + 1,
                                    arrival_ms: next_arrival,
                                    prior: None,
                                    last_error: Some(error.clone()),
                                });
                                self.retry_attempts += 1;
                            }
                        }
                    }
                    // Provisional when a retry was scheduled: the retry's
                    // outcome overwrites it.
                    self.outcomes[attempt.index] = Some(SloOutcome::Failed(error));
                }
            }
        }

        // Stage 2: admission over the virtual clock, in arrival order
        // (ties break by submission index, keeping the walk fully
        // deterministic).
        viable.sort_by(|a, b| {
            round[a.0]
                .arrival_ms
                .total_cmp(&round[b.0].arrival_ms)
                .then_with(|| round[a.0].index.cmp(&round[b.0].index))
        });
        let ladder = &pipeline.config().resolutions;
        let mut admitted: Vec<AdmittedAttempt> = Vec::new();
        for (slot, plan) in viable {
            let attempt = &round[slot];
            let request = &self.queue[attempt.index];
            let virtual_start = self.server_free_ms.max(attempt.arrival_ms);
            self.peak_backlog_ms = self.peak_backlog_ms.max(virtual_start - attempt.arrival_ms);
            // Wall-clock deadline enforcement: on a real-clock step whose
            // `now` has already passed the deadline, the request expires
            // without compute. Batch drains step at `now = ∞` (not finite),
            // so their admission test is the virtual-only one, bit for bit.
            let wall_expired = now_ms.is_finite() && now_ms >= request.deadline_ms;
            if wall_expired || virtual_start >= request.deadline_ms {
                self.outcomes[attempt.index] = Some(if attempt.attempt == 0 {
                    SloOutcome::Rejected(Rejected::DeadlineExceeded)
                } else {
                    // The backoff ran the clock out: keep the failure that
                    // scheduled this retry.
                    SloOutcome::Failed(
                        attempt
                            .last_error
                            .clone()
                            .expect("retries carry the error that scheduled them"),
                    )
                });
                continue;
            }
            let planned_resolution = match &attempt.prior {
                Some(prior) => prior.planned_resolution,
                None => plan.chosen_resolution,
            };
            // Candidate rungs. First attempts (and re-plans) walk the
            // ladder downward from the planned resolution — the largest
            // bucket that fits the slack, the memory budget, and the SSIM
            // floor wins, and a floor violation ends the walk (cheaper
            // rungs only read less). A demoting retry instead prefers one
            // rung *below* the resolution that failed, falling back to
            // that rung itself (here a floor violation moves on: the
            // fallback is the higher-quality option).
            let (candidates, floor_break): (Vec<usize>, bool) = match &attempt.prior {
                Some(prior) => {
                    let served = prior.served_resolution;
                    let demote =
                        self.options.retry.as_ref().is_some_and(|policy| policy.demote_on_retry);
                    let mut rungs = Vec::with_capacity(2);
                    if demote {
                        if let Some(below) = ladder.iter().copied().filter(|&r| r < served).max() {
                            rungs.push(below);
                        }
                    }
                    rungs.push(served);
                    (rungs, false)
                }
                None => {
                    let mut rungs: Vec<usize> =
                        ladder.iter().copied().filter(|&r| r <= planned_resolution).collect();
                    rungs.sort_unstable_by(|a, b| b.cmp(a));
                    (rungs, true)
                }
            };
            // Injected cost spikes model transient faults: they fire on
            // first attempts only, so a retry is charged the nominal
            // estimate.
            let multiplier = if attempt.attempt == 0 { request.cost_multiplier } else { 1.0 };
            let mut placed = false;
            let mut memory_skipped = false;
            for resolution in candidates {
                if let (Some(peaks), Some(budget)) =
                    (&self.arena_peaks, self.options.memory_budget_bytes)
                {
                    if peaks.get(&resolution).copied().unwrap_or(0) > budget {
                        // Over the arena budget: demote down the ladder
                        // instead of risking the allocation.
                        memory_skipped = true;
                        continue;
                    }
                }
                // Precision tiers at this rung: f32 first; when demotion
                // is enabled *and* the accuracy gate admits the rung, the
                // quantized arm is tried next — before the walk steps down
                // the resolution ladder, because serving full resolution
                // at gated-reduced precision degrades accuracy less than
                // dropping a rung.
                let mut tiers: Vec<(f64, bool)> =
                    vec![(self.latency.estimate_ms(resolution), false)];
                if let Some(precision) = &self.options.precision {
                    if precision.gate.admits(resolution) {
                        tiers.push((precision.latency.estimate_ms(resolution), true));
                    }
                }
                let mut fit: Option<(f64, bool, bool)> = None;
                for (estimate_ms, int8) in tiers {
                    let mut service_ms = estimate_ms * multiplier;
                    let mut cancelled = false;
                    if let Some(watchdog) = &self.options.watchdog {
                        let cap_ms = estimate_ms * watchdog.overrun_factor;
                        if service_ms > cap_ms {
                            // Overrun: charge only the cap (one runaway
                            // must not blow every queued deadline) and
                            // cancel the execution before it spends
                            // compute.
                            service_ms = cap_ms;
                            cancelled = true;
                        }
                    }
                    if virtual_start + service_ms <= request.deadline_ms {
                        fit = Some((service_ms, cancelled, int8));
                        break;
                    }
                }
                let Some((service_ms, cancelled, int8)) = fit else {
                    continue;
                };
                let final_plan = if resolution == plan.chosen_resolution {
                    plan.clone()
                } else {
                    match pipeline.replan_at(request.sample.get(), &plan, resolution) {
                        Ok(replanned) => replanned,
                        Err(error) => {
                            self.outcomes[attempt.index] = Some(SloOutcome::Failed(error));
                            placed = true;
                            break;
                        }
                    }
                };
                if let Some(floor) = self.options.ssim_floor {
                    if resolution != planned_resolution && final_plan.quality() < floor {
                        if floor_break {
                            break;
                        }
                        continue;
                    }
                }
                self.server_free_ms = virtual_start + service_ms;
                if memory_skipped {
                    self.memory_demoted_flag[attempt.index] = true;
                }
                self.precision_demoted_flag[attempt.index] = int8;
                if cancelled {
                    self.watchdog_cancelled += 1;
                }
                admitted.push(AdmittedAttempt {
                    slot,
                    seq: admitted.len(),
                    plan: final_plan,
                    planned_resolution,
                    virtual_start_ms: virtual_start,
                    virtual_finish_ms: self.server_free_ms,
                    cancelled,
                    int8,
                });
                placed = true;
                break;
            }
            if !placed {
                self.outcomes[attempt.index] = Some(if attempt.attempt == 0 {
                    SloOutcome::Rejected(Rejected::Overloaded)
                } else {
                    SloOutcome::Failed(
                        attempt
                            .last_error
                            .clone()
                            .expect("retries carry the error that scheduled them"),
                    )
                });
            }
        }

        // Stage 3: execute. Watchdog-doomed attempts run under a
        // pre-fired cancellation token — the execute task is refused at
        // its task boundary, so the cancellation path is exercised
        // end-to-end while spending zero backbone compute. Everything
        // else executes as homogeneous resolution buckets under
        // per-request isolation, mirroring the batch scheduler.
        let (doomed, normal): (Vec<AdmittedAttempt>, Vec<AdmittedAttempt>) =
            admitted.into_iter().partition(|entry| entry.cancelled);
        let mut executed: Vec<(AdmittedAttempt, Result<InferenceRecord>)> =
            Vec::with_capacity(doomed.len() + normal.len());
        if !doomed.is_empty() {
            let token = rescnn_tensor::CancellationToken::new();
            token.cancel();
            let results = token.scope(|| {
                run_batch_isolated(pipeline, threads, doomed.len(), |slot| {
                    let entry = &doomed[slot];
                    pipeline.execute_unscoped(
                        self.queue[round[entry.slot].index].sample.get(),
                        &entry.plan,
                    )
                })
            });
            let factor = self.options.watchdog.as_ref().map_or(f64::INFINITY, |w| w.overrun_factor);
            for (entry, raw) in doomed.into_iter().zip(results) {
                debug_assert!(
                    matches!(raw, Err(CoreError::Cancelled { .. })),
                    "a pre-fired token must refuse the task, got {raw:?}"
                );
                // Replace the mechanism's task-local message with the
                // watchdog context (stable across reruns and budgets).
                let reason = format!(
                    "watchdog: estimated service at {}\u{b2} exceeded {factor}x the \
                     latency-model estimate; execution cancelled before start",
                    entry.plan.chosen_resolution
                );
                executed.push((entry, Err(CoreError::Cancelled { reason })));
            }
        }
        // Buckets are keyed by (resolution, precision): a demoted request
        // executes under the int8 dispatch table, a nominal one under the
        // f32 table — never mixed in one scoped batch.
        let mut buckets: BTreeMap<(usize, bool), Vec<usize>> = BTreeMap::new();
        for (pos, entry) in normal.iter().enumerate() {
            buckets.entry((entry.plan.chosen_resolution, entry.int8)).or_default().push(pos);
        }
        let mut normal_results: Vec<Option<Result<InferenceRecord>>> = Vec::new();
        normal_results.resize_with(normal.len(), || None);
        for (&(resolution, int8), members) in &buckets {
            let dispatch = if int8 {
                pipeline.bucket_dispatch_int8(resolution)
            } else {
                pipeline.bucket_dispatch(resolution)
            };
            for batch in members.chunks(max_batch) {
                let results = run_batch_isolated(pipeline, threads, batch.len(), |slot| {
                    let entry = &normal[batch[slot]];
                    let attempt = &round[entry.slot];
                    // Chaos panics model transient faults and fire on
                    // first attempts only — a retry of a chaos-panicked
                    // request genuinely recovers.
                    if attempt.attempt == 0 {
                        if let Some(every) = self.options.chaos_panic_every {
                            if (attempt.index + 1).is_multiple_of(every) {
                                panic!("chaos: injected panic in request {}", attempt.index);
                            }
                        }
                        if self.options.chaos_panic_requests.binary_search(&attempt.index).is_ok() {
                            panic!("chaos: injected panic in request {}", attempt.index);
                        }
                    }
                    rescnn_tensor::with_algo_calibration_scope(Arc::clone(&dispatch), || {
                        pipeline
                            .execute_unscoped(self.queue[attempt.index].sample.get(), &entry.plan)
                    })
                });
                for (slot, result) in results.into_iter().enumerate() {
                    normal_results[batch[slot]] = Some(result);
                }
            }
        }
        for (pos, entry) in normal.into_iter().enumerate() {
            let result = normal_results[pos].take().expect("every admitted attempt was executed");
            executed.push((entry, result));
        }

        // Settle outcomes and feed the breakers in admission order (the
        // deterministic virtual-server order), then schedule retries.
        executed.sort_by_key(|(entry, _)| entry.seq);
        for (entry, result) in executed {
            let attempt = &round[entry.slot];
            let request = &self.queue[attempt.index];
            if let (Some(policy), Some(source)) = (&self.options.breaker, request.source) {
                let breaker = self
                    .breakers
                    .entry(source)
                    .or_insert_with(|| CircuitBreaker::new(policy.clone()));
                match &result {
                    Ok(_) => breaker.record_success(),
                    Err(_) => breaker.record_failure(entry.virtual_finish_ms),
                }
            }
            match result {
                Ok(record) => {
                    self.outcomes[attempt.index] = Some(SloOutcome::Completed(CompletedRequest {
                        record,
                        planned_resolution: entry.planned_resolution,
                        served_resolution: entry.plan.chosen_resolution,
                        virtual_start_ms: entry.virtual_start_ms,
                        virtual_finish_ms: entry.virtual_finish_ms,
                        virtual_latency_ms: entry.virtual_finish_ms - request.arrival_ms,
                        retries: attempt.attempt,
                    }));
                }
                Err(error) => {
                    if let Some(policy) = &self.options.retry {
                        if attempt.attempt < policy.max_retries {
                            let next_arrival =
                                entry.virtual_finish_ms + policy.backoff_for(attempt.attempt);
                            if next_arrival < request.deadline_ms {
                                self.pending.push(PendingAttempt {
                                    index: attempt.index,
                                    attempt: attempt.attempt + 1,
                                    arrival_ms: next_arrival,
                                    prior: Some(PriorAttempt {
                                        served_resolution: entry.plan.chosen_resolution,
                                        planned_resolution: entry.planned_resolution,
                                        plan: entry.plan,
                                    }),
                                    last_error: Some(error.clone()),
                                });
                                self.retry_attempts += 1;
                            }
                        }
                    }
                    // Provisional when a retry was scheduled; final
                    // otherwise.
                    self.outcomes[attempt.index] = Some(SloOutcome::Failed(error));
                }
            }
        }

        // A request settled terminally this step iff it was in the round and
        // no retry re-entered it into the pending set.
        let mut settled: Vec<usize> = round.iter().map(|attempt| attempt.index).collect();
        settled.retain(|&index| !self.pending.iter().any(|p| p.index == index));
        settled.sort_unstable();
        debug_assert!(
            settled.iter().all(|&index| self.outcomes[index].is_some()),
            "a settled request must hold a terminal outcome"
        );
        settled
    }

    /// Aggregates the settled outcomes into an [`SloReport`] (and the recorded
    /// trace, when recording), in submission order. Every accepted request
    /// must have settled.
    pub(crate) fn finish(self, wall_seconds: f64) -> (SloReport, Option<ServingTrace>) {
        debug_assert!(self.pending.is_empty(), "finish() with attempts still pending");
        let AdmissionCore {
            threads,
            outcomes,
            memory_demoted_flag,
            precision_demoted_flag,
            breakers,
            peak_backlog_ms,
            retry_attempts,
            watchdog_cancelled,
            mut trace,
            ..
        } = self;
        let outcomes: Vec<SloOutcome> = outcomes
            .into_iter()
            .map(|outcome| outcome.expect("every request has an outcome"))
            .collect();
        if let Some(trace) = &mut trace {
            trace.decisions = outcomes
                .iter()
                .enumerate()
                .map(|(index, outcome)| {
                    TraceDecision::from_outcome(outcome, precision_demoted_flag[index])
                })
                .collect();
        }
        let total = outcomes.len();
        let mut completed_records: Vec<InferenceRecord> = Vec::new();
        let mut latencies: Vec<f64> = Vec::new();
        let mut ssim_sum = 0.0f64;
        let (mut completed, mut shed, mut expired, mut faulted) = (0usize, 0usize, 0usize, 0usize);
        let (mut breaker_shed, mut recovered, mut memory_demoted) = (0usize, 0usize, 0usize);
        let mut precision_demoted = 0usize;
        for (index, outcome) in outcomes.iter().enumerate() {
            match outcome {
                SloOutcome::Completed(done) => {
                    completed += 1;
                    ssim_sum += done.record.quality;
                    latencies.push(done.virtual_latency_ms);
                    completed_records.push(done.record);
                    if done.retries > 0 {
                        recovered += 1;
                    }
                    if memory_demoted_flag[index] {
                        memory_demoted += 1;
                    }
                    if precision_demoted_flag[index] {
                        precision_demoted += 1;
                    }
                }
                SloOutcome::Rejected(Rejected::Overloaded) => shed += 1,
                SloOutcome::Rejected(Rejected::DeadlineExceeded) => expired += 1,
                SloOutcome::Rejected(Rejected::CircuitOpen) => breaker_shed += 1,
                SloOutcome::Failed(_) => faulted += 1,
            }
        }
        let breaker_trips = breakers.values().map(CircuitBreaker::trips).sum();
        // Only requests that actually completed count as degraded (a degraded
        // admission that then faulted is a fault, not a degradation).
        let degraded = outcomes
            .iter()
            .filter(
                |o| matches!(o, SloOutcome::Completed(c) if c.served_resolution < c.planned_resolution),
            )
            .count();
        latencies.sort_by(f64::total_cmp);
        let report = PipelineReport::from_records("slo".to_string(), &completed_records);
        let totalf = total.max(1) as f64;
        let report = SloReport {
            report,
            outcomes,
            total,
            completed,
            degraded,
            shed,
            expired,
            faulted,
            recovered,
            retry_attempts,
            breaker_shed,
            breaker_trips,
            watchdog_cancelled,
            memory_demoted,
            precision_demoted,
            goodput: completed as f64 / totalf,
            shed_rate: shed as f64 / totalf,
            slo_violation_rate: (shed + breaker_shed + expired + faulted) as f64 / totalf,
            p50_latency_ms: percentile(&latencies, 0.50),
            p99_latency_ms: percentile(&latencies, 0.99),
            mean_delivered_ssim: if completed > 0 { ssim_sum / completed as f64 } else { 0.0 },
            peak_backlog_ms,
            wall_seconds,
            threads,
        };
        (report, trace)
    }
}

/// Nearest-rank percentile over an ascending-sorted slice (0 when empty).
pub(crate) fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_model_lookup_rounds_up_then_falls_back() {
        let model = ResolutionLatencyModel::from_estimates([(112, 4.0), (224, 16.0)]);
        assert_eq!(model.estimate_ms(112), 4.0);
        assert_eq!(model.estimate_ms(150), 16.0, "unknown resolutions round up");
        assert_eq!(model.estimate_ms(448), 16.0, "beyond the ladder falls back to the largest");
        let empty = ResolutionLatencyModel::from_estimates([]);
        assert_eq!(empty.estimate_ms(224), 0.0);
        let negative = ResolutionLatencyModel::from_estimates([(64, -3.0)]);
        assert_eq!(negative.estimate_ms(64), 0.0, "estimates clamp to non-negative");
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let values = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&values, 0.50), 2.0);
        assert_eq!(percentile(&values, 0.99), 4.0);
        assert_eq!(percentile(&values, 0.25), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn options_builders() {
        let options = SloOptions::default();
        assert!(options.ssim_floor.is_none());
        assert!(options.latency.is_none());
        assert!(options.chaos_panic_every.is_none());
        let options = SloOptions::default()
            .with_ssim_floor(0.9)
            .with_latency_model(ResolutionLatencyModel::from_estimates([(112, 1.0)]))
            .with_chaos_panic_every(0);
        assert_eq!(options.ssim_floor, Some(0.9));
        assert_eq!(options.chaos_panic_every, Some(1), "chaos interval clamps to 1");
        assert!(options.latency.is_some());
    }

    #[test]
    fn request_builders_clamp() {
        let sample =
            rescnn_data::DatasetSpec::cars_like().with_len(1).with_max_dimension(48).build(1);
        let request = SloRequest::new(&sample[0], 1.0, 9.0).with_cost_multiplier(-2.0);
        assert_eq!(request.cost_multiplier, 0.0);
        assert_eq!(request.arrival_ms, 1.0);
        assert_eq!(request.deadline_ms, 9.0);
        assert!(request.storage.is_none());
    }
}
