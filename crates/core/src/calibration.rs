//! Storage calibration (§V of the paper).
//!
//! Given a calibration set of progressively encoded images, [`CalibrationCurves`] records,
//! for every sample and every candidate resolution, how reconstruction quality (SSIM
//! against the ground-truth resize) and cumulative bytes read grow with the number of
//! scans. [`StorageCalibrator`] then binary-searches, per resolution, the minimal SSIM
//! threshold whose induced read policy loses at most 0.05 % accuracy — exactly the
//! procedure the paper describes (binary search over `[0.94, 1.0]`, terminating at a step
//! of 1e-4). The result is a [`StoragePolicy`] mapping resolutions to thresholds.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use rescnn_data::{Dataset, DatasetKind, Sample};
use rescnn_imaging::{crop_and_resize_cow, CropRatio, Image, SsimConfig, SsimReference};
use rescnn_models::ModelKind;
use rescnn_oracle::{AccuracyOracle, EvalContext};
use rescnn_projpeg::{ProgressiveDecoder, ProgressiveImage, ScanPlan};
use rescnn_tensor::num_threads;
use rescnn_tensor::parallel::parallel_map_indexed;

use crate::error::{CoreError, Result};

/// Quality/read-size of one (sample, resolution, scan-count) point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScanPoint {
    /// Number of scans read.
    pub scans: usize,
    /// Fraction of the full file read.
    pub read_fraction: f64,
    /// SSIM of the decoded, cropped, resized image against the ground-truth resize.
    pub ssim: f64,
}

/// The per-resolution scan curves of one sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleCurve {
    /// Points for 1..=num_scans scans, in order.
    pub points: Vec<ScanPoint>,
}

impl SampleCurve {
    /// The first (cheapest) point whose SSIM reaches `threshold`, or the final point if
    /// none does (read everything). `None` only for an empty curve — curves built by
    /// [`CalibrationCurves::compute`]/[`CalibrationCurves::sample_curves`] always carry
    /// at least one point, but `points` is public, so a hand-built empty curve surfaces
    /// here as an absent value rather than a panic.
    pub fn point_for_threshold(&self, threshold: f64) -> Option<ScanPoint> {
        for p in &self.points {
            if p.ssim >= threshold {
                return Some(*p);
            }
        }
        self.points.last().copied()
    }
}

/// Precomputed quality/read-size curves for a calibration set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CalibrationCurves {
    /// Dataset family of the calibration samples.
    pub dataset: DatasetKind,
    /// Backbone model being calibrated for.
    pub model: ModelKind,
    /// Crop ratio applied before resizing.
    pub crop: CropRatio,
    /// Candidate resolutions, in order.
    pub resolutions: Vec<usize>,
    /// The calibration samples (metadata only; pixels are regenerated on demand).
    samples: Vec<Sample>,
    /// `curves[res_idx][sample_idx]`.
    curves: Vec<Vec<SampleCurve>>,
}

impl CalibrationCurves {
    /// Renders, encodes, and measures every sample of `dataset` at every resolution.
    ///
    /// `encode_quality` is the progressive encoder's quality factor (the paper transcodes
    /// existing JPEGs; 90 is a representative archival quality).
    ///
    /// Samples are measured in parallel over the persistent engine worker pool
    /// ([`parallel_map_indexed`], bounded by the caller's
    /// [`EngineContext`](rescnn_tensor::EngineContext) /
    /// [`num_threads`]). Each sample's measurement is independent and deterministic and
    /// the results fold in sample order, so the output is identical for every thread
    /// budget (the first failing sample in dataset order is the one reported).
    ///
    /// # Errors
    /// Returns an error if the dataset is empty or any render/encode/decode step fails.
    pub fn compute(
        dataset: &Dataset,
        model: ModelKind,
        crop: CropRatio,
        resolutions: &[usize],
        encode_quality: u8,
    ) -> Result<Self> {
        if dataset.is_empty() {
            return Err(CoreError::EmptyDataset);
        }
        if resolutions.is_empty() {
            return Err(CoreError::InvalidConfig { reason: "no resolutions".into() });
        }
        let per_sample = parallel_map_indexed(dataset.len(), num_threads(), |index| {
            let sample = &dataset[index];
            let original = sample.render()?;
            let encoded =
                ProgressiveImage::encode(&original, encode_quality, ScanPlan::standard())?;
            Self::sample_curves(&original, &encoded, crop, resolutions)
        });
        let mut curves = vec![Vec::with_capacity(dataset.len()); resolutions.len()];
        for outcome in per_sample {
            for (res_idx, curve) in outcome?.into_iter().enumerate() {
                curves[res_idx].push(curve);
            }
        }
        Ok(CalibrationCurves {
            dataset: dataset.kind(),
            model,
            crop,
            resolutions: resolutions.to_vec(),
            samples: dataset.samples().to_vec(),
            curves,
        })
    }

    /// Computes the per-resolution scan curves for one already-encoded image.
    ///
    /// Scan prefixes are decoded incrementally through one [`ProgressiveDecoder`] — O(S)
    /// total decode work for S scans instead of the O(S²) of from-scratch decoding every
    /// prefix — with frames bitwise identical to `encoded.decode(scans)` (the decoder's
    /// pinned invariant). Each resolution's ground-truth reference is lifted into a
    /// persistent [`SsimReference`], so the reference-side SSIM state (luma plane and
    /// `Σx`/`Σx²` integral rows) is built once per reference frame and amortized across
    /// all scan prefixes instead of being rebuilt per prefix; `SsimReference::score` is
    /// bitwise identical to plain `ssim`, so the curves still match the from-scratch
    /// computation exactly.
    ///
    /// # Errors
    /// Returns an error if decoding or resizing fails.
    pub fn sample_curves(
        original: &Image,
        encoded: &ProgressiveImage,
        crop: CropRatio,
        resolutions: &[usize],
    ) -> Result<Vec<SampleCurve>> {
        // Ground-truth reference at each resolution comes from the original pixels.
        let references: Vec<SsimReference> = resolutions
            .iter()
            .map(|&res| {
                let reference = crop_and_resize_cow(original, crop, res)?;
                Ok(SsimReference::new(&reference, SsimConfig::default())?)
            })
            .collect::<Result<_>>()?;
        let mut out: Vec<SampleCurve> =
            resolutions.iter().map(|_| SampleCurve { points: Vec::new() }).collect();
        let mut decoder = encoded.progressive_decoder()?;
        for scans in 1..=encoded.num_scans() {
            let decoded = decoder.advance()?;
            let read_fraction = encoded.read_fraction(scans);
            for (res_idx, &res) in resolutions.iter().enumerate() {
                let presented = crop_and_resize_cow(decoded, crop, res)?;
                let quality = references[res_idx].score(&presented)?;
                out[res_idx].points.push(ScanPoint { scans, read_fraction, ssim: quality });
            }
        }
        Ok(out)
    }

    /// Number of calibration samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the calibration set is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The calibration samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// The curve of one sample at one resolution index.
    pub fn curve(&self, res_idx: usize, sample_idx: usize) -> &SampleCurve {
        &self.curves[res_idx][sample_idx]
    }

    /// Accuracy and mean read fraction when every sample is read up to the first scan that
    /// reaches `threshold` SSIM at resolution `resolutions[res_idx]`.
    pub fn accuracy_at_threshold(
        &self,
        oracle: &AccuracyOracle,
        res_idx: usize,
        threshold: f64,
    ) -> (f64, f64) {
        let res = self.resolutions[res_idx];
        let mut correct = 0usize;
        let mut read = 0.0f64;
        let mut scored = 0usize;
        for (sample, curve) in self.samples.iter().zip(&self.curves[res_idx]) {
            // Empty curves (impossible via `compute`, representable by hand) are
            // skipped rather than panicking on a missing last point.
            let Some(point) = curve.point_for_threshold(threshold) else { continue };
            scored += 1;
            read += point.read_fraction;
            let ctx = EvalContext {
                model: self.model,
                dataset: self.dataset,
                resolution: res,
                crop: self.crop,
                quality: point.ssim,
            };
            correct += usize::from(oracle.is_correct(sample, &ctx));
        }
        let n = scored.max(1) as f64;
        (correct as f64 / n, read / n)
    }

    /// Accuracy when every sample is read in full (all scans, quality 1.0).
    pub fn full_read_accuracy(&self, oracle: &AccuracyOracle, res_idx: usize) -> f64 {
        let res = self.resolutions[res_idx];
        let ctx = EvalContext::full_quality(self.model, self.dataset, res, self.crop);
        oracle.accuracy(self.samples.iter(), &ctx)
    }

    /// Sweeps SSIM thresholds and reports `(mean read fraction, accuracy change)` pairs —
    /// the data behind Figure 6. `steps` thresholds are sampled uniformly in
    /// `[min_threshold, 1.0]`.
    pub fn read_size_sweep(
        &self,
        oracle: &AccuracyOracle,
        res_idx: usize,
        min_threshold: f64,
        steps: usize,
    ) -> Vec<(f64, f64)> {
        let full = self.full_read_accuracy(oracle, res_idx);
        let steps = steps.max(2);
        (0..steps)
            .map(|i| {
                let threshold =
                    min_threshold + (1.0 - min_threshold) * i as f64 / (steps - 1) as f64;
                let (acc, read) = self.accuracy_at_threshold(oracle, res_idx, threshold);
                (read, (acc - full) * 100.0)
            })
            .collect()
    }
}

/// Walks `decoder` forward and returns the cheapest [`ScanPoint`] whose SSIM at `res`
/// reaches `threshold` — or the final point when no threshold is given or it is never
/// met — together with the presented (cropped + resized) image at that point.
///
/// This is the serving-side early-exit complement to the full
/// [`CalibrationCurves::sample_curves`]: `plan` only needs the point the storage policy
/// would select, so with a threshold the walk scores one scan at a time and stops at the
/// first sufficient prefix (identical to `point_for_threshold` on the full curve, which
/// also returns the *first* sufficient point), and with no threshold (read-all) it jumps
/// straight to the final scan and scores a single frame.
///
/// The reference arrives as a persistent [`SsimReference`] so its integral state is
/// shared across every prefix the walk scores (and any [`quality_at_scans`] follow-up);
/// `SsimReference::score` is bitwise identical to plain `ssim`.
///
/// With a threshold the decoder must be fresh (zero scans applied) so the walk starts at
/// scan 1; the decoder is left positioned at the returned point, ready for
/// [`quality_at_scans`] follow-ups.
pub(crate) fn cheapest_sufficient_point(
    decoder: &mut ProgressiveDecoder<'_>,
    reference: &SsimReference,
    crop: CropRatio,
    res: usize,
    threshold: Option<f64>,
) -> Result<(ScanPoint, Image)> {
    let encoded = decoder.image();
    let num_scans = encoded.num_scans();
    match threshold {
        Some(threshold) => {
            debug_assert_eq!(
                decoder.scans_applied(),
                0,
                "threshold walks must score every prefix from the first scan"
            );
            loop {
                let scans = decoder.scans_applied() + 1;
                let frame = decoder.advance()?;
                let presented = crop_and_resize_cow(frame, crop, res)?;
                let quality = reference.score(&presented)?;
                let point =
                    ScanPoint { scans, read_fraction: encoded.read_fraction(scans), ssim: quality };
                if quality >= threshold || scans == num_scans {
                    return Ok((point, presented.into_owned()));
                }
            }
        }
        None => {
            let frame = decoder.advance_to(num_scans)?;
            let presented = crop_and_resize_cow(frame, crop, res)?;
            let quality = reference.score(&presented)?;
            let point = ScanPoint {
                scans: num_scans,
                read_fraction: encoded.read_fraction(num_scans),
                ssim: quality,
            };
            Ok((point, presented.into_owned()))
        }
    }
}

/// SSIM of the decoded image at exactly `scans` scans against `reference`, advancing the
/// decoder there. Used by the planner when the preview stage read deeper into the file
/// than the chosen resolution's own sufficient point, so the quality actually presented
/// to the backbone is that of the deeper prefix.
pub(crate) fn quality_at_scans(
    decoder: &mut ProgressiveDecoder<'_>,
    reference: &SsimReference,
    crop: CropRatio,
    res: usize,
    scans: usize,
) -> Result<f64> {
    let frame = decoder.advance_to(scans)?;
    let presented = crop_and_resize_cow(frame, crop, res)?;
    Ok(reference.score(&presented)?)
}

/// A calibrated storage policy: the minimal SSIM threshold per resolution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoragePolicy {
    thresholds: BTreeMap<usize, f64>,
}

impl StoragePolicy {
    /// The trivial policy that always reads the entire file.
    pub fn read_all() -> Self {
        StoragePolicy { thresholds: BTreeMap::new() }
    }

    /// Builds a policy from explicit thresholds.
    pub fn from_thresholds(thresholds: BTreeMap<usize, f64>) -> Self {
        StoragePolicy { thresholds }
    }

    /// The SSIM threshold for a resolution, if one was calibrated.
    pub fn threshold_for(&self, resolution: usize) -> Option<f64> {
        self.thresholds.get(&resolution).copied()
    }

    /// All calibrated thresholds.
    pub fn thresholds(&self) -> &BTreeMap<usize, f64> {
        &self.thresholds
    }

    /// Whether the policy always reads everything.
    pub fn is_read_all(&self) -> bool {
        self.thresholds.is_empty()
    }

    /// Decides how many scans to read for an encoded image at `resolution`, returning the
    /// scan count, the fraction of the file read, and the achieved SSIM.
    ///
    /// This is an ingest-time decision (the full image is available to measure quality
    /// against), matching the paper's setup where per-image scan counts follow calibrated
    /// thresholds. The search early-exits: it decodes incrementally and stops at the
    /// first sufficient prefix instead of computing the full curve, returning exactly
    /// the point `point_for_threshold` would pick from it.
    ///
    /// # Errors
    /// Returns an error if decoding or resizing fails.
    pub fn scans_for(
        &self,
        original: &Image,
        encoded: &ProgressiveImage,
        crop: CropRatio,
        resolution: usize,
    ) -> Result<ScanPoint> {
        let reference = crop_and_resize_cow(original, crop, resolution)?;
        let reference = SsimReference::new(&reference, SsimConfig::default())?;
        let mut decoder = encoded.progressive_decoder()?;
        let (point, _) = cheapest_sufficient_point(
            &mut decoder,
            &reference,
            crop,
            resolution,
            self.threshold_for(resolution),
        )?;
        Ok(point)
    }
}

/// The calibration search (§V).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StorageCalibrator {
    /// Maximum tolerated accuracy loss (paper: 0.05 %, i.e. 0.0005).
    pub accuracy_budget: f64,
    /// Lower end of the searched SSIM interval (paper: 0.94).
    pub min_threshold: f64,
    /// Binary-search termination step (paper: 1e-4).
    pub min_step: f64,
}

impl Default for StorageCalibrator {
    fn default() -> Self {
        StorageCalibrator { accuracy_budget: 0.0005, min_threshold: 0.94, min_step: 1e-4 }
    }
}

impl StorageCalibrator {
    /// Binary-searches the minimal acceptable SSIM threshold for one resolution.
    pub fn calibrate_resolution(
        &self,
        curves: &CalibrationCurves,
        oracle: &AccuracyOracle,
        res_idx: usize,
    ) -> f64 {
        let full = curves.full_read_accuracy(oracle, res_idx);
        let acceptable = |threshold: f64| {
            let (acc, _) = curves.accuracy_at_threshold(oracle, res_idx, threshold);
            full - acc <= self.accuracy_budget
        };
        // If even the lowest threshold is acceptable, use it.
        if acceptable(self.min_threshold) {
            return self.min_threshold;
        }
        let mut lo = self.min_threshold;
        let mut hi = 1.0f64;
        while hi - lo > self.min_step {
            let mid = 0.5 * (lo + hi);
            if acceptable(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    }

    /// Calibrates every resolution in the curves, producing a [`StoragePolicy`].
    pub fn calibrate(&self, curves: &CalibrationCurves, oracle: &AccuracyOracle) -> StoragePolicy {
        let mut thresholds = BTreeMap::new();
        for (res_idx, &res) in curves.resolutions.iter().enumerate() {
            thresholds.insert(res, self.calibrate_resolution(curves, oracle, res_idx));
        }
        StoragePolicy { thresholds }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescnn_data::DatasetSpec;
    use rescnn_imaging::ssim;

    fn small_curves() -> CalibrationCurves {
        let dataset = DatasetSpec::cars_like().with_len(12).with_max_dimension(96).build(3);
        CalibrationCurves::compute(
            &dataset,
            ModelKind::ResNet18,
            CropRatio::new(0.75).unwrap(),
            &[112, 224],
            88,
        )
        .unwrap()
    }

    #[test]
    fn curves_are_monotone_in_scans() {
        let curves = small_curves();
        assert_eq!(curves.len(), 12);
        assert!(!curves.is_empty());
        assert_eq!(curves.samples().len(), 12);
        for res_idx in 0..2 {
            for sample_idx in 0..curves.len() {
                let curve = curves.curve(res_idx, sample_idx);
                assert_eq!(curve.points.len(), 5);
                for pair in curve.points.windows(2) {
                    assert!(pair[1].read_fraction >= pair[0].read_fraction);
                    assert!(pair[1].ssim >= pair[0].ssim - 0.03, "quality regressed: {pair:?}");
                }
                let last = curve.points.last().unwrap();
                assert!((last.read_fraction - 1.0).abs() < 1e-9);
                assert!(last.ssim > 0.8);
            }
        }
    }

    #[test]
    fn threshold_lookup_selects_cheapest_sufficient_point() {
        let curves = small_curves();
        let curve = curves.curve(1, 0);
        let relaxed = curve.point_for_threshold(0.0).unwrap();
        assert_eq!(relaxed.scans, 1);
        let strict = curve.point_for_threshold(2.0).unwrap();
        assert_eq!(strict.scans, 5);
        let mid = curve.point_for_threshold(curve.points[2].ssim).unwrap();
        assert!(mid.scans <= 3);
        // An empty (hand-built) curve yields no point instead of panicking.
        assert_eq!(SampleCurve { points: vec![] }.point_for_threshold(0.5), None);
    }

    #[test]
    fn accuracy_at_threshold_is_monotone_and_bounded() {
        let curves = small_curves();
        let oracle = AccuracyOracle::new(0);
        let full = curves.full_read_accuracy(&oracle, 1);
        let (acc_hi, read_hi) = curves.accuracy_at_threshold(&oracle, 1, 0.999);
        let (acc_lo, read_lo) = curves.accuracy_at_threshold(&oracle, 1, 0.5);
        assert!(acc_hi >= acc_lo);
        assert!(read_hi >= read_lo);
        assert!(acc_hi <= full + 1e-9);
        assert!((0.0..=1.0).contains(&read_lo));
    }

    #[test]
    fn calibration_respects_the_accuracy_budget() {
        let curves = small_curves();
        let oracle = AccuracyOracle::new(0);
        let calibrator = StorageCalibrator::default();
        let policy = calibrator.calibrate(&curves, &oracle);
        assert!(!policy.is_read_all());
        for (res_idx, &res) in curves.resolutions.iter().enumerate() {
            let threshold = policy.threshold_for(res).unwrap();
            assert!((0.94..=1.0).contains(&threshold));
            let full = curves.full_read_accuracy(&oracle, res_idx);
            let (acc, read) = curves.accuracy_at_threshold(&oracle, res_idx, threshold);
            assert!(full - acc <= calibrator.accuracy_budget + 1e-9);
            assert!(read <= 1.0);
        }
    }

    #[test]
    fn read_size_sweep_shape() {
        let curves = small_curves();
        let oracle = AccuracyOracle::new(0);
        let sweep = curves.read_size_sweep(&oracle, 0, 0.5, 8);
        assert_eq!(sweep.len(), 8);
        // Accuracy change is never positive (reading less cannot beat reading everything)
        // and read fraction stays in (0, 1].
        for (read, change) in &sweep {
            assert!(*read > 0.0 && *read <= 1.0);
            assert!(*change <= 1e-9);
        }
        // The strictest threshold reads the most data.
        assert!(sweep.last().unwrap().0 >= sweep.first().unwrap().0);
    }

    #[test]
    fn sample_curves_match_from_scratch_decoding() {
        // The incremental decoder inside `sample_curves` must reproduce the original
        // from-scratch computation bitwise: decode(k) for every prefix, crop + resize,
        // SSIM against the reference resize.
        let dataset = DatasetSpec::cars_like().with_len(2).with_max_dimension(96).build(17);
        let crop = CropRatio::new(0.75).unwrap();
        let resolutions = [112usize, 224];
        for sample in &dataset {
            let original = sample.render().unwrap();
            let encoded = sample.encode_progressive(88).unwrap();
            let fast =
                CalibrationCurves::sample_curves(&original, &encoded, crop, &resolutions).unwrap();
            for (res_idx, &res) in resolutions.iter().enumerate() {
                let reference = rescnn_imaging::crop_and_resize(&original, crop, res).unwrap();
                for scans in 1..=encoded.num_scans() {
                    let decoded = encoded.decode(scans).unwrap();
                    let presented = rescnn_imaging::crop_and_resize(&decoded, crop, res).unwrap();
                    let expected = ssim(&reference, &presented).unwrap();
                    let point = fast[res_idx].points[scans - 1];
                    assert_eq!(point.scans, scans);
                    assert_eq!(
                        point.ssim.to_bits(),
                        expected.to_bits(),
                        "res {res} scan {scans}: {} vs {expected}",
                        point.ssim
                    );
                    assert_eq!(point.read_fraction, encoded.read_fraction(scans));
                }
            }
        }
    }

    #[test]
    fn compute_is_identical_across_thread_budgets() {
        // The per-sample fan-out over the worker pool must never change results: each
        // sample's measurement is independent and folds in dataset order.
        use rescnn_tensor::EngineContext;
        let dataset = DatasetSpec::cars_like().with_len(9).with_max_dimension(80).build(5);
        let crop = CropRatio::new(0.75).unwrap();
        let build = |threads: usize| {
            EngineContext::new().with_threads(threads).scope(|| {
                CalibrationCurves::compute(&dataset, ModelKind::ResNet18, crop, &[112, 168], 85)
                    .unwrap()
            })
        };
        let baseline = build(1);
        for threads in [2usize, 4] {
            let parallel = build(threads);
            assert_eq!(parallel.resolutions, baseline.resolutions);
            for res_idx in 0..baseline.resolutions.len() {
                for sample_idx in 0..baseline.len() {
                    assert_eq!(
                        parallel.curve(res_idx, sample_idx),
                        baseline.curve(res_idx, sample_idx),
                        "threads={threads} res_idx={res_idx} sample={sample_idx}"
                    );
                }
            }
        }
    }

    #[test]
    fn storage_policy_scans_for_matches_thresholds() {
        let dataset = DatasetSpec::imagenet_like().with_len(1).with_max_dimension(96).build(8);
        let sample = &dataset[0];
        let original = sample.render().unwrap();
        let encoded = sample.encode_progressive(88).unwrap();
        let crop = CropRatio::new(0.75).unwrap();
        let read_all = StoragePolicy::read_all();
        assert!(read_all.is_read_all());
        let all = read_all.scans_for(&original, &encoded, crop, 224).unwrap();
        assert_eq!(all.scans, encoded.num_scans());
        let mut thresholds = BTreeMap::new();
        thresholds.insert(224usize, 0.0f64);
        let lax = StoragePolicy::from_thresholds(thresholds);
        assert_eq!(lax.thresholds().len(), 1);
        let cheap = lax.scans_for(&original, &encoded, crop, 224).unwrap();
        assert_eq!(cheap.scans, 1);
        assert!(cheap.read_fraction < all.read_fraction);
        // Un-calibrated resolution falls back to reading everything.
        let fallback = lax.scans_for(&original, &encoded, crop, 112).unwrap();
        assert_eq!(fallback.scans, encoded.num_scans());
    }

    #[test]
    fn empty_inputs_are_rejected() {
        let empty = DatasetSpec::imagenet_like().with_len(0).build(0);
        assert!(matches!(
            CalibrationCurves::compute(&empty, ModelKind::ResNet18, CropRatio::full(), &[112], 90),
            Err(CoreError::EmptyDataset)
        ));
        let tiny = DatasetSpec::imagenet_like().with_len(1).with_max_dimension(48).build(0);
        assert!(CalibrationCurves::compute(&tiny, ModelKind::ResNet18, CropRatio::full(), &[], 90)
            .is_err());
    }
}
