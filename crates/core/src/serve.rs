//! Batched serving: resolution-bucketed scheduling of concurrent inference
//! requests over the persistent engine worker pool.
//!
//! The paper's thesis is that resolution is the dominant lever on CNN serving
//! cost; a production deployment therefore sees *mixed-resolution* traffic — the
//! scale model sends easy images to 112² and hard ones to 448². Executing such a
//! queue one request at a time wastes the batch-level parallelism the persistent
//! pool makes cheap. The [`BatchScheduler`] instead:
//!
//! 1. **Plans** every queued request ([`DynamicResolutionPipeline::plan`]): the
//!    preview read + scale-model stage commits each request to a backbone
//!    resolution. Planning itself is data-parallel across requests.
//! 2. **Buckets** the plans by chosen resolution, so each batch is
//!    shape-homogeneous — the layout that lets a backbone execute it as one
//!    batched forward pass.
//! 3. **Executes** each bucket in batches of at most
//!    [`max_batch`](BatchOptions::max_batch), splitting the thread budget between
//!    sample-level (outer) and kernel-level (inner) parallelism with
//!    [`split_parallelism`]: a full batch runs one sample per worker, a partial
//!    batch keeps every worker on one sample at a time.
//! 4. **Reports** per-bucket latency/throughput ([`BucketStats`]) plus an
//!    aggregate [`PipelineReport`] that is *identical* — bitwise, including float
//!    accumulation order — to what the sequential
//!    [`evaluate`](DynamicResolutionPipeline::evaluate) path produces, because
//!    records are folded in submission order regardless of bucket or batch
//!    scheduling.
//!
//! # Fault isolation
//!
//! A serving queue is multi-tenant: one request carrying a truncated or
//! bit-flipped progressive stream (see
//! [`BatchScheduler::submit_with_storage`]), or one whose stage panics, must
//! never take the rest of its batch down. Each request's plan and execute
//! stages therefore run under [`parallel_map_isolated`]: a failure — including
//! a caught panic, surfaced as [`CoreError::Panicked`] — becomes a
//! [`RequestError`] in [`ServeReport::errors`] while every other request
//! completes and is folded into the partial report. Set
//! [`BatchOptions::strict`] to restore fail-fast semantics (the error with the
//! lowest submission index is returned).

use std::sync::Arc;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use rescnn_data::{Dataset, Sample};
use rescnn_projpeg::ProgressiveImage;
use rescnn_tensor::{num_threads, parallel_map_isolated, split_parallelism};

use crate::error::{CoreError, Result};
use crate::pipeline::{DynamicResolutionPipeline, InferencePlan, InferenceRecord, PipelineReport};

/// Tuning knobs for the batch scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchOptions {
    /// Maximum requests executed as one batch (clamped to at least 1).
    pub max_batch: usize,
    /// Total worker-thread budget for the scheduler (`None` uses the pipeline's
    /// engine context, falling back to the engine default).
    pub threads: Option<usize>,
    /// When `true`, the first per-request failure (in submission order) aborts
    /// the run and is returned as the run's error. When `false` (the default),
    /// failures are isolated into [`ServeReport::errors`] and every healthy
    /// request still completes.
    pub strict: bool,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions { max_batch: 8, threads: None, strict: false }
    }
}

impl BatchOptions {
    /// Creates options with the given batch size.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Bounds the scheduler's total thread budget.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Selects fail-fast (`true`) or isolate-and-continue (`false`) handling of
    /// per-request failures.
    pub fn with_strict(mut self, strict: bool) -> Self {
        self.strict = strict;
        self
    }
}

/// A per-request failure isolated out of a serving run, keyed by the request's
/// submission index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestError {
    /// The request's position in submission order.
    pub index: usize,
    /// Identifier of the sample the request carried.
    pub sample_id: u64,
    /// What went wrong; panics are contained as [`CoreError::Panicked`].
    pub error: CoreError,
}

/// Latency/throughput accounting for one resolution bucket.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BucketStats {
    /// The bucket's backbone resolution.
    pub resolution: usize,
    /// Requests routed to this bucket.
    pub requests: usize,
    /// Batches the bucket was executed in.
    pub batches: usize,
    /// Conv layer shapes whose dispatch algorithm was resolved once for the
    /// whole bucket (instead of per layer per request) and installed as a
    /// scoped calibration around the bucket's execution.
    pub dispatch_shapes: usize,
    /// Sample-level (outer) parallelism used for the bucket's full batches.
    pub outer_parallelism: usize,
    /// Kernel-level (inner) parallelism paired with `outer_parallelism`.
    pub inner_parallelism: usize,
    /// Wall-clock seconds spent executing the bucket.
    pub total_seconds: f64,
    /// Mean wall-clock latency per batch, in milliseconds.
    pub mean_batch_latency_ms: f64,
    /// Requests per second achieved within the bucket.
    pub throughput_rps: f64,
}

/// The outcome of draining a [`BatchScheduler`] queue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Aggregate accuracy/cost report over the requests that completed,
    /// identical to the sequential [`evaluate`](DynamicResolutionPipeline::evaluate)
    /// over the same requests in the same submission order (a *partial* report
    /// when [`errors`](Self::errors) is non-empty).
    pub report: PipelineReport,
    /// Per-resolution-bucket latency/throughput, ascending by resolution.
    pub buckets: Vec<BucketStats>,
    /// Requests that failed, ascending by submission index; empty on a fully
    /// healthy run. Each failure was isolated — it never aborted its batch.
    pub errors: Vec<RequestError>,
    /// Wall-clock seconds spent in the planning stage (preview + scale model).
    pub planning_seconds: f64,
    /// Thread budget the scheduler distributed.
    pub threads: usize,
}

/// Groups queued inference requests by chosen resolution and executes them as
/// homogeneous batches over the persistent worker pool.
///
/// # Examples
/// ```no_run
/// use rescnn_core::{BatchOptions, BatchScheduler, DynamicResolutionPipeline};
/// # fn demo(pipeline: &DynamicResolutionPipeline, data: &rescnn_data::Dataset)
/// #     -> rescnn_core::Result<()> {
/// let mut scheduler = BatchScheduler::new(pipeline, BatchOptions::default());
/// scheduler.submit_all(data);
/// let outcome = scheduler.run()?;
/// for bucket in &outcome.buckets {
///     println!("{}²: {:.1} req/s", bucket.resolution, bucket.throughput_rps);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BatchScheduler<'a> {
    pipeline: &'a DynamicResolutionPipeline,
    options: BatchOptions,
    queue: Vec<QueuedRequest<'a>>,
}

/// One queued request: the sample plus, optionally, an externally supplied
/// storage state (the path by which corrupt streams reach the scheduler).
#[derive(Debug)]
struct QueuedRequest<'a> {
    sample: &'a Sample,
    storage: Option<ProgressiveImage>,
}

impl<'a> BatchScheduler<'a> {
    /// Creates a scheduler serving one pipeline.
    pub fn new(pipeline: &'a DynamicResolutionPipeline, options: BatchOptions) -> Self {
        BatchScheduler { pipeline, options, queue: Vec::new() }
    }

    /// Enqueues one request, returning its position in the queue. Results are
    /// always reported in submission order.
    pub fn submit(&mut self, sample: &'a Sample) -> usize {
        self.queue.push(QueuedRequest { sample, storage: None });
        self.queue.len() - 1
    }

    /// Enqueues one request whose progressive stream is supplied by the caller
    /// instead of re-encoded from the rendered sample — how externally stored
    /// (possibly corrupt or truncated) streams enter the scheduler. A stream
    /// error is isolated to this request; see [`ServeReport::errors`].
    pub fn submit_with_storage(&mut self, sample: &'a Sample, storage: ProgressiveImage) -> usize {
        self.queue.push(QueuedRequest { sample, storage: Some(storage) });
        self.queue.len() - 1
    }

    /// Enqueues every sample of a dataset in order.
    pub fn submit_all(&mut self, dataset: &'a Dataset) {
        self.queue.extend(dataset.iter().map(|sample| QueuedRequest { sample, storage: None }));
    }

    /// Number of requests currently queued.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// The scheduler's total thread budget.
    fn thread_budget(&self) -> usize {
        self.options
            .threads
            .or(self.pipeline.engine_context().threads)
            .unwrap_or_else(num_threads)
            .max(1)
    }

    /// Drains the queue: plans, buckets, executes, and aggregates.
    ///
    /// Per-request failures — codec errors from corrupt streams, stage panics
    /// (contained as [`CoreError::Panicked`]) — are isolated into
    /// [`ServeReport::errors`] while every other request completes, unless
    /// [`BatchOptions::strict`] asks for fail-fast.
    ///
    /// # Errors
    /// Returns an error if the queue is empty, or — in strict mode only — the
    /// per-request failure with the lowest submission index.
    pub fn run(&mut self) -> Result<ServeReport> {
        if self.queue.is_empty() {
            return Err(CoreError::EmptyDataset);
        }
        let queue = std::mem::take(&mut self.queue);
        let threads = self.thread_budget();
        let max_batch = self.options.max_batch.max(1);

        // Stage 1: plan every request (data-parallel across the queue), each
        // under its own fault-isolation boundary.
        let planning_start = Instant::now();
        let plans = run_batch_isolated(self.pipeline, threads, queue.len(), |index| {
            let entry = &queue[index];
            match &entry.storage {
                Some(encoded) => {
                    self.pipeline.plan_with_storage_unscoped(entry.sample, encoded.clone())
                }
                None => self.pipeline.plan_unscoped(entry.sample),
            }
        });
        let planning_seconds = planning_start.elapsed().as_secs_f64();
        let mut errors: Vec<RequestError> = Vec::new();
        let mut plan_slots: Vec<Option<InferencePlan>> = Vec::with_capacity(queue.len());
        for (index, outcome) in plans.into_iter().enumerate() {
            match outcome {
                Ok(plan) => plan_slots.push(Some(plan)),
                Err(error) => {
                    errors.push(RequestError { index, sample_id: queue[index].sample.id, error });
                    plan_slots.push(None);
                }
            }
        }

        // Stage 2: bucket the planned requests by chosen resolution (BTreeMap ⇒
        // ascending buckets). Failed plans never reach a bucket.
        let mut buckets: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for (index, plan) in plan_slots.iter().enumerate() {
            if let Some(plan) = plan {
                buckets.entry(plan.chosen_resolution).or_default().push(index);
            }
        }

        // Stage 3: execute each bucket in homogeneous batches. The bucket's
        // conv-dispatch table is resolved once per (resolution, calibration
        // generation) — not per request — and installed as a scoped calibration
        // around *each task body* (the scope is thread-local, so it must be
        // entered on whichever thread — scheduler or pool worker — actually
        // executes the request): every backbone kernel dispatched inside pays a
        // thread-local lookup instead of the process-wide calibration lock, and
        // all of a bucket's requests see one consistent table even if a boot
        // sweep installs a new process-wide table mid-bucket.
        let mut records: Vec<Option<InferenceRecord>> = vec![None; queue.len()];
        let mut bucket_stats = Vec::with_capacity(buckets.len());
        for (&resolution, members) in &buckets {
            let (outer, inner) = split_parallelism(max_batch.min(members.len()), threads);
            let dispatch = self.pipeline.bucket_dispatch(resolution);
            let dispatch_shapes = dispatch.len();
            let bucket_start = Instant::now();
            let mut batches = 0usize;
            for batch in members.chunks(max_batch) {
                let outcomes = run_batch_isolated(self.pipeline, threads, batch.len(), |slot| {
                    let index = batch[slot];
                    let plan = plan_slots[index].as_ref().expect("bucketed requests have plans");
                    rescnn_tensor::with_algo_calibration_scope(Arc::clone(&dispatch), || {
                        self.pipeline.execute_unscoped(queue[index].sample, plan)
                    })
                });
                for (slot, outcome) in outcomes.into_iter().enumerate() {
                    let index = batch[slot];
                    match outcome {
                        Ok(record) => records[index] = Some(record),
                        Err(error) => errors.push(RequestError {
                            index,
                            sample_id: queue[index].sample.id,
                            error,
                        }),
                    }
                }
                batches += 1;
            }
            let total_seconds = bucket_start.elapsed().as_secs_f64();
            bucket_stats.push(BucketStats {
                resolution,
                requests: members.len(),
                batches,
                dispatch_shapes,
                outer_parallelism: outer,
                inner_parallelism: inner,
                total_seconds,
                mean_batch_latency_ms: total_seconds * 1e3 / batches.max(1) as f64,
                throughput_rps: members.len() as f64 / total_seconds.max(1e-12),
            });
        }
        // The decoded storage state is the bulk of the scheduler's memory; release
        // it before aggregation.
        drop(plan_slots);

        // Failures arrive plan-stage-first then bucket-by-bucket; report them in
        // submission order. In strict mode the earliest one aborts the run.
        errors.sort_by_key(|e| e.index);
        if self.options.strict {
            if let Some(first) = errors.first() {
                return Err(first.error.clone());
            }
        }

        // Stage 4: fold the completed records in submission order through the
        // same `PipelineReport::from_records` the sequential evaluate path uses,
        // so the identical-results guarantee is structural, whatever the
        // batching did. On a run with failures this yields a *partial* report
        // over exactly the requests that completed.
        let records: Vec<InferenceRecord> = records.into_iter().flatten().collect();
        let report = PipelineReport::from_records("dynamic".to_string(), &records);
        Ok(ServeReport { report, buckets: bucket_stats, errors, planning_seconds, threads })
    }
}

/// Runs `f(i)` for `i` in `0..count` with the scheduler's inner/outer thread
/// split and a per-task fault-isolation boundary, returning the outcomes in
/// index order. The pipeline's [`EngineContext`](rescnn_tensor::EngineContext)
/// is installed first so [`parallel_map_isolated`] carries it (algorithm
/// overrides included) onto pool workers; the inner thread budget replaces the
/// pipeline's own setting for the duration of the batch. A task that panics
/// yields [`CoreError::Panicked`] in its own slot — the pool, the other tasks,
/// and any scoped calibration state are unaffected.
pub(crate) fn run_batch_isolated<T, F>(
    pipeline: &DynamicResolutionPipeline,
    threads: usize,
    count: usize,
    f: F,
) -> Vec<Result<T>>
where
    T: Send,
    F: Fn(usize) -> Result<T> + Sync,
{
    pipeline.engine_context().scope(|| {
        parallel_map_isolated(count, threads, f)
            .into_iter()
            .map(|outcome| match outcome {
                Ok(result) => result,
                // Cooperative cancellations (a token installed around the batch,
                // e.g. by the SLO watchdog) are refused at the task boundary and
                // reported as such, not as panics.
                Err(message) if message.starts_with("cancelled") => {
                    Err(CoreError::Cancelled { reason: message })
                }
                Err(message) => Err(CoreError::Panicked { message }),
            })
            .collect()
    })
}

impl DynamicResolutionPipeline {
    /// Evaluates the dynamic pipeline over a dataset through the batch scheduler.
    ///
    /// The returned [`ServeReport::report`] is identical to the sequential
    /// [`evaluate`](Self::evaluate) — batching is an execution detail and must
    /// never change results — while [`ServeReport::buckets`] adds the per-bucket
    /// latency/throughput the serving layer is measured by.
    ///
    /// # Errors
    /// Returns an error if the dataset is empty, or — in strict mode — the
    /// earliest per-sample failure.
    pub fn evaluate_batched(
        &self,
        dataset: &Dataset,
        options: BatchOptions,
    ) -> Result<ServeReport> {
        let mut scheduler = BatchScheduler::new(self, options);
        scheduler.submit_all(dataset);
        scheduler.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale_model::{ScaleModelConfig, ScaleModelTrainer};
    use crate::PipelineConfig;
    use rescnn_data::{DatasetKind, DatasetSpec};
    use rescnn_imaging::CropRatio;
    use rescnn_models::ModelKind;
    use rescnn_oracle::AccuracyOracle;

    fn build_pipeline(resolutions: Vec<usize>) -> DynamicResolutionPipeline {
        let config =
            ScaleModelConfig { resolutions: resolutions.clone(), epochs: 30, ..Default::default() };
        let trainer = ScaleModelTrainer::new(config, ModelKind::ResNet18, DatasetKind::CarsLike);
        let train = DatasetSpec::cars_like().with_len(60).with_max_dimension(96).build(1);
        let scale_model = trainer.train(&train, 3).unwrap();
        let pipeline_config = PipelineConfig::new(ModelKind::ResNet18, DatasetKind::CarsLike)
            .with_crop(CropRatio::new(0.56).unwrap())
            .with_resolutions(resolutions);
        DynamicResolutionPipeline::new(pipeline_config, scale_model, AccuracyOracle::new(77))
            .unwrap()
    }

    #[test]
    fn batched_report_is_identical_to_sequential_for_every_batch_size() {
        let pipeline = build_pipeline(vec![112, 224, 336]);
        let data = DatasetSpec::cars_like().with_len(24).with_max_dimension(96).build(123);
        let sequential = pipeline.evaluate(&data).unwrap();
        for max_batch in [1usize, 3, 8, 32] {
            let served = pipeline
                .evaluate_batched(&data, BatchOptions::default().with_max_batch(max_batch))
                .unwrap();
            assert_eq!(served.report, sequential, "batch size {max_batch} changed the report");
            let bucketed: usize = served.buckets.iter().map(|b| b.requests).sum();
            assert_eq!(bucketed, data.len(), "every request must land in a bucket");
            for bucket in &served.buckets {
                assert!(sequential.resolution_histogram.contains_key(&bucket.resolution));
                assert_eq!(
                    sequential.resolution_histogram[&bucket.resolution], bucket.requests,
                    "bucket sizes must match the sequential resolution histogram"
                );
                assert!(bucket.batches >= 1);
                assert!(bucket.batches <= bucket.requests.div_ceil(max_batch));
                assert!(bucket.throughput_rps > 0.0);
                assert!(bucket.outer_parallelism * bucket.inner_parallelism <= served.threads);
            }
        }
    }

    #[test]
    fn batched_results_are_stable_across_thread_budgets() {
        let pipeline = build_pipeline(vec![112, 224]);
        let data = DatasetSpec::cars_like().with_len(10).with_max_dimension(72).build(7);
        let options = BatchOptions::default().with_max_batch(4);
        let baseline = pipeline.evaluate_batched(&data, options.with_threads(1)).unwrap();
        for threads in [2usize, 4, 7] {
            let served = pipeline.evaluate_batched(&data, options.with_threads(threads)).unwrap();
            assert_eq!(served.report, baseline.report, "{threads} threads changed results");
            assert_eq!(served.threads, threads);
        }
    }

    #[test]
    fn buckets_resolve_their_dispatch_tables_once() {
        let pipeline = build_pipeline(vec![112, 224]);
        let data = DatasetSpec::cars_like().with_len(8).with_max_dimension(72).build(11);
        let served = pipeline.evaluate_batched(&data, BatchOptions::default()).unwrap();
        for bucket in &served.buckets {
            // Every bucket resolved the backbone's full per-shape algo table.
            let layers = pipeline
                .config()
                .backbone
                .arch(rescnn_data::DatasetKind::CarsLike.num_classes())
                .conv_layers(bucket.resolution)
                .unwrap();
            let unique: std::collections::HashSet<_> = layers
                .iter()
                .map(|l| rescnn_tensor::ConvShapeKey::new(l.params, l.input))
                .collect();
            assert_eq!(bucket.dispatch_shapes, unique.len());
            // The cached table is reused (same Arc) while the calibration
            // generation is unchanged.
            let first = pipeline.bucket_dispatch(bucket.resolution);
            let second = pipeline.bucket_dispatch(bucket.resolution);
            assert!(std::sync::Arc::ptr_eq(&first, &second));
        }
    }

    #[test]
    fn bucket_dispatch_cache_invalidates_on_new_calibration() {
        let _guard = crate::test_sync::calibration_lock();
        let pipeline = build_pipeline(vec![112]);
        let before = pipeline.bucket_dispatch(112);
        // Installing a calibration bumps the generation; the cache re-resolves.
        let previous =
            rescnn_tensor::install_algo_calibration(Some(rescnn_tensor::AlgoCalibration::new()));
        let after = pipeline.bucket_dispatch(112);
        assert!(!std::sync::Arc::ptr_eq(&before, &after), "stale bucket table survived");
        rescnn_tensor::install_algo_calibration(previous.map(|t| (*t).clone()));
    }

    /// The execution stage's zero-allocation property must hold across warm
    /// scheduler runs: a drained queue re-submitted and re-run advances the
    /// engine's tracked allocation counter (kernel scratch + activation arena)
    /// by zero.
    #[test]
    fn warm_scheduler_runs_do_not_allocate_tracked_buffers() {
        let _guard = crate::test_sync::calibration_lock();
        let pipeline = build_pipeline(vec![112, 224]);
        let data = DatasetSpec::cars_like().with_len(6).with_max_dimension(72).build(3);
        let options = BatchOptions::default().with_max_batch(3);
        // Warm-up run populates every pool.
        let baseline = pipeline.evaluate_batched(&data, options).unwrap();
        let warm = rescnn_tensor::scratch::heap_allocations();
        let again = pipeline.evaluate_batched(&data, options).unwrap();
        assert_eq!(
            rescnn_tensor::scratch::heap_allocations() - warm,
            0,
            "a warm BatchScheduler run must not allocate scratch or arena buffers"
        );
        assert_eq!(again.report, baseline.report);
    }

    #[test]
    fn scheduler_queue_bookkeeping() {
        let pipeline = build_pipeline(vec![112, 224]);
        let data = DatasetSpec::cars_like().with_len(4).with_max_dimension(64).build(2);
        let mut scheduler = BatchScheduler::new(&pipeline, BatchOptions::default());
        assert!(matches!(scheduler.run(), Err(CoreError::EmptyDataset)));
        assert_eq!(scheduler.submit(&data[0]), 0);
        assert_eq!(scheduler.submit(&data[1]), 1);
        assert_eq!(scheduler.queued(), 2);
        let outcome = scheduler.run().unwrap();
        assert_eq!(outcome.report.num_samples, 2);
        assert_eq!(scheduler.queued(), 0, "run drains the queue");
        assert!(matches!(scheduler.run(), Err(CoreError::EmptyDataset)));
    }

    #[test]
    fn options_clamp_and_default() {
        let options = BatchOptions::default();
        assert_eq!(options.max_batch, 8);
        assert_eq!(options.threads, None);
        assert!(!options.strict);
        assert_eq!(BatchOptions::default().with_max_batch(0).max_batch, 1);
        assert_eq!(BatchOptions::default().with_threads(0).threads, Some(1));
        assert!(BatchOptions::default().with_strict(true).strict);
    }

    #[test]
    fn corrupt_streams_are_isolated_to_their_own_requests() {
        let pipeline = build_pipeline(vec![112, 224]);
        let data = DatasetSpec::cars_like().with_len(8).with_max_dimension(72).build(19);
        let quality = pipeline.config().encode_quality;
        let corrupt: Vec<usize> = vec![1, 5];

        let mut scheduler = BatchScheduler::new(&pipeline, BatchOptions::default());
        for (index, sample) in data.iter().enumerate() {
            if corrupt.contains(&index) {
                // Keep only 3 bytes of the first scan: the preview decode fails.
                let stream = sample.encode_progressive(quality).unwrap().with_truncated_scan(0, 3);
                scheduler.submit_with_storage(sample, stream);
            } else {
                scheduler.submit(sample);
            }
        }
        let served = scheduler.run().unwrap();

        // The failures are per-request records, in submission order.
        assert_eq!(served.errors.len(), corrupt.len());
        for (error, &index) in served.errors.iter().zip(&corrupt) {
            assert_eq!(error.index, index);
            assert_eq!(error.sample_id, data[index].id);
            assert!(matches!(error.error, CoreError::Codec(_)), "got {:?}", error.error);
        }
        // Every healthy request completed, and the partial report is identical
        // to serving the healthy subset alone.
        assert_eq!(served.report.num_samples, data.len() - corrupt.len());
        let mut healthy = BatchScheduler::new(&pipeline, BatchOptions::default());
        for (index, sample) in data.iter().enumerate() {
            if !corrupt.contains(&index) {
                healthy.submit(sample);
            }
        }
        let healthy = healthy.run().unwrap();
        assert!(healthy.errors.is_empty());
        assert_eq!(served.report, healthy.report);
    }

    #[test]
    fn strict_mode_reports_the_earliest_failure_in_submission_order() {
        let pipeline = build_pipeline(vec![112, 224]);
        let data = DatasetSpec::cars_like().with_len(4).with_max_dimension(64).build(5);
        let quality = pipeline.config().encode_quality;
        let mut scheduler =
            BatchScheduler::new(&pipeline, BatchOptions::default().with_strict(true));
        scheduler.submit(&data[0]);
        scheduler.submit_with_storage(
            &data[1],
            data[1].encode_progressive(quality).unwrap().with_truncated_scan(0, 1),
        );
        scheduler.submit(&data[2]);
        scheduler.submit_with_storage(
            &data[3],
            data[3].encode_progressive(quality).unwrap().with_truncated_scan(0, 1),
        );
        match scheduler.run() {
            Err(CoreError::Codec(_)) => {}
            other => panic!("strict mode must fail fast with the codec error, got {other:?}"),
        }
    }

    #[test]
    fn healthy_storage_submissions_match_the_internal_encode_path() {
        let pipeline = build_pipeline(vec![112, 224]);
        let data = DatasetSpec::cars_like().with_len(6).with_max_dimension(72).build(23);
        let quality = pipeline.config().encode_quality;
        let baseline = pipeline.evaluate_batched(&data, BatchOptions::default()).unwrap();
        let mut scheduler = BatchScheduler::new(&pipeline, BatchOptions::default());
        for sample in &data {
            scheduler.submit_with_storage(sample, sample.encode_progressive(quality).unwrap());
        }
        let served = scheduler.run().unwrap();
        assert!(served.errors.is_empty());
        assert_eq!(served.report, baseline.report, "caller-supplied healthy streams must match");
    }
}
