//! # rescnn-core
//!
//! The paper's primary contribution: a **dynamic-resolution inference pipeline** that
//! couples a lightweight scale model, a storage-calibration stage over progressively
//! encoded images, and per-resolution backbone execution.
//!
//! * [`ScaleModel`] / [`ScaleModelTrainer`] — the multi-label predictor of per-resolution
//!   backbone correctness, trained with the cross-validation sharding of Figure 5.
//! * [`CalibrationCurves`] / [`StorageCalibrator`] / [`StoragePolicy`] — the SSIM-threshold
//!   storage calibration of §V (Figure 6, Tables III/IV).
//! * [`DynamicResolutionPipeline`] — the two-model pipeline of Figure 4, with end-to-end
//!   evaluation against static-resolution baselines (Figures 8/9). Inference is split
//!   into a [`plan`](DynamicResolutionPipeline::plan) stage (preview + scale model) and
//!   an [`execute`](DynamicResolutionPipeline::execute) stage, and every kernel-bearing
//!   call runs inside the pipeline's scoped
//!   [`EngineContext`](rescnn_tensor::EngineContext) rather than mutating process-global
//!   engine state.
//! * [`BatchScheduler`] — the batched serving layer: groups queued requests into
//!   resolution buckets, executes each bucket with batch-level data parallelism over
//!   the persistent engine worker pool, and reports per-bucket latency/throughput
//!   ([`BucketStats`]) alongside a [`PipelineReport`] identical to sequential
//!   evaluation. Per-request failures (corrupt streams, contained panics) are
//!   isolated into [`ServeReport::errors`] instead of aborting the batch.
//! * [`SloScheduler`] — the SLO-aware serving core: per-request deadlines over a
//!   deterministic virtual clock, admission control fed by a calibrated
//!   [`ResolutionLatencyModel`], load-shedding that *degrades resolution* down the
//!   ladder (bounded by an SSIM floor) before it ever sheds, and the same
//!   per-request fault isolation.
//!
//! # Examples
//! ```no_run
//! use rescnn_core::{DynamicResolutionPipeline, PipelineConfig, ScaleModelConfig, ScaleModelTrainer};
//! use rescnn_data::{DatasetKind, DatasetSpec};
//! use rescnn_models::ModelKind;
//! use rescnn_oracle::AccuracyOracle;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let train = DatasetSpec::cars_like().with_len(120).with_max_dimension(128).build(0);
//! let trainer = ScaleModelTrainer::new(
//!     ScaleModelConfig::default(), ModelKind::ResNet50, DatasetKind::CarsLike);
//! let scale_model = trainer.train(&train, 4)?;
//! let pipeline = DynamicResolutionPipeline::new(
//!     PipelineConfig::new(ModelKind::ResNet50, DatasetKind::CarsLike),
//!     scale_model,
//!     AccuracyOracle::new(0),
//! )?;
//! let test = DatasetSpec::cars_like().with_len(64).with_max_dimension(128).build(1);
//! let report = pipeline.evaluate(&test)?;
//! println!("dynamic accuracy = {:.1}%", report.accuracy * 100.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod boot;
mod calibration;
mod error;
mod features;
mod lifecycle;
mod pipeline;
mod precision;
mod scale_model;
mod serve;
mod server;
mod slo;
mod trace;

pub use boot::{run_boot_sweep, start_boot_calibration, BootCalibration, BootCalibrationConfig};
pub use calibration::{
    CalibrationCurves, SampleCurve, ScanPoint, StorageCalibrator, StoragePolicy,
};
pub use error::{CoreError, Result, SubmitError};
pub use features::{extract_features, FEATURE_COUNT};
pub use lifecycle::{
    BreakerState, CircuitBreaker, CircuitBreakerPolicy, RetryPolicy, SourceId, WatchdogPolicy,
};
pub use pipeline::{
    install_conv_calibration, CalibrationInstall, DynamicResolutionPipeline, InferencePlan,
    InferenceRecord, PipelineConfig, PipelineReport, PipelineWarning,
};
pub use precision::{PrecisionGate, PrecisionGateConfig, PrecisionVerdict};
pub use scale_model::{ScaleModel, ScaleModelConfig, ScaleModelTrainer, TrainingExample};
pub use serve::{BatchOptions, BatchScheduler, BucketStats, RequestError, ServeReport};
pub use server::{
    Completion, CompletionStream, ServerConfig, ServerReport, ServerRequest, ServerState,
    SloServer, Ticket,
};
pub use slo::{
    CompletedRequest, PrecisionDemotion, Rejected, ResolutionLatencyModel, SloOptions, SloOutcome,
    SloReport, SloRequest, SloScheduler,
};
pub use trace::{ServingTrace, TraceDecision, TraceRequest};

#[cfg(test)]
pub(crate) mod test_sync {
    //! Serialization of tests that install process-wide dispatch calibration or
    //! observe the process-wide allocation counter: without it, concurrent
    //! tests in this binary race on that shared state.

    use std::sync::{Mutex, MutexGuard};

    static CALIBRATION_LOCK: Mutex<()> = Mutex::new(());

    pub(crate) fn calibration_lock() -> MutexGuard<'static, ()> {
        CALIBRATION_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Commonly used items, intended for glob import.
pub mod prelude {
    pub use crate::{
        BatchOptions, BatchScheduler, CalibrationCurves, CircuitBreakerPolicy, CoreError,
        DynamicResolutionPipeline, PipelineConfig, PipelineReport, Rejected,
        ResolutionLatencyModel, RetryPolicy, ScaleModel, ScaleModelConfig, ScaleModelTrainer,
        ServeReport, ServerConfig, ServerReport, ServerRequest, ServerState, ServingTrace,
        SloOptions, SloOutcome, SloReport, SloRequest, SloScheduler, SloServer, SourceId,
        StorageCalibrator, StoragePolicy, SubmitError, Ticket, WatchdogPolicy,
    };
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rescnn_data::DatasetSpec;
    use rescnn_imaging::CropRatio;
    use rescnn_models::ModelKind;
    use rescnn_oracle::AccuracyOracle;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn storage_policy_never_reads_more_than_everything(seed in 0u64..200, threshold in 0.9f64..1.0) {
            let dataset = DatasetSpec::imagenet_like().with_len(1).with_max_dimension(72).build(seed);
            let sample = &dataset[0];
            let original = sample.render().unwrap();
            let encoded = sample.encode_progressive(85).unwrap();
            let mut thresholds = std::collections::BTreeMap::new();
            thresholds.insert(224usize, threshold);
            let policy = StoragePolicy::from_thresholds(thresholds);
            let point = policy
                .scans_for(&original, &encoded, CropRatio::new(0.75).unwrap(), 224)
                .unwrap();
            prop_assert!(point.read_fraction <= 1.0 + 1e-12);
            prop_assert!(point.scans >= 1 && point.scans <= encoded.num_scans());
        }

        #[test]
        fn calibration_threshold_within_search_interval(seed in 0u64..50) {
            let dataset = DatasetSpec::cars_like().with_len(6).with_max_dimension(72).build(seed);
            let curves = CalibrationCurves::compute(
                &dataset,
                ModelKind::ResNet18,
                CropRatio::new(0.75).unwrap(),
                &[168],
                85,
            )
            .unwrap();
            let calibrator = StorageCalibrator::default();
            let policy = calibrator.calibrate(&curves, &AccuracyOracle::new(seed));
            let t = policy.threshold_for(168).unwrap();
            prop_assert!((0.94..=1.0).contains(&t));
        }
    }
}
