//! The scale model: a lightweight multi-label predictor of per-resolution backbone
//! correctness (§IV of the paper).
//!
//! The paper uses a MobileNetV2 trained with binary cross-entropy to predict, from a
//! 112 × 112 preview, whether the backbone would be correct at each candidate resolution,
//! and trains it with the cross-validation sharding of Figure 5 so that labels always come
//! from a backbone that did not see the image during training. We keep the objective, the
//! sharding protocol, and the preview resolution, and implement the predictor as a
//! multi-label logistic model over hand-crafted multi-scale features (the compute cost of
//! the *deployed* scale model is still accounted as a MobileNetV2 forward pass by the
//! pipeline, per the paper's cost accounting).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use rescnn_data::{Dataset, DatasetKind};
use rescnn_imaging::{crop_and_resize_cow, CropRatio};
use rescnn_models::ModelKind;
use rescnn_oracle::{AccuracyOracle, EvalContext};

use crate::error::{CoreError, Result};
use crate::features::{extract_features, FEATURE_COUNT};

/// Configuration of the scale model and its training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleModelConfig {
    /// Candidate backbone resolutions the model chooses among.
    pub resolutions: Vec<usize>,
    /// Preview resolution the scale model operates at (112 in the paper).
    pub preview_resolution: usize,
    /// Training epochs.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Seed for shuffling and initialization.
    pub seed: u64,
}

impl Default for ScaleModelConfig {
    fn default() -> Self {
        ScaleModelConfig {
            resolutions: vec![112, 168, 224, 280, 336, 392, 448],
            preview_resolution: 112,
            epochs: 60,
            learning_rate: 0.08,
            l2: 1e-4,
            seed: 0,
        }
    }
}

/// One training example: preview features and per-resolution correctness labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingExample {
    /// Feature vector of the preview image.
    pub features: Vec<f64>,
    /// `labels[i]` is `true` when the backbone is correct at `resolutions[i]`.
    pub labels: Vec<bool>,
}

/// The trained multi-label scale model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleModel {
    resolutions: Vec<usize>,
    preview_resolution: usize,
    /// Per-resolution weight vectors, each `FEATURE_COUNT + 1` long (bias last).
    weights: Vec<Vec<f64>>,
    /// Feature standardization parameters.
    feature_mean: Vec<f64>,
    feature_std: Vec<f64>,
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

impl ScaleModel {
    /// Trains the model on explicit examples (the [`ScaleModelTrainer`] builds these from
    /// a dataset with the Figure 5 protocol).
    ///
    /// # Errors
    /// Returns an error if there are no examples, or if example/label lengths are
    /// inconsistent with the configuration.
    pub fn train(config: &ScaleModelConfig, examples: &[TrainingExample]) -> Result<Self> {
        if examples.is_empty() {
            return Err(CoreError::EmptyDataset);
        }
        if config.resolutions.is_empty() {
            return Err(CoreError::InvalidConfig { reason: "no candidate resolutions".into() });
        }
        let n_res = config.resolutions.len();
        for ex in examples {
            if ex.features.len() != FEATURE_COUNT || ex.labels.len() != n_res {
                return Err(CoreError::InvalidConfig {
                    reason: format!(
                        "example with {} features / {} labels, expected {} / {}",
                        ex.features.len(),
                        ex.labels.len(),
                        FEATURE_COUNT,
                        n_res
                    ),
                });
            }
        }

        // Standardize features.
        let mut mean = vec![0.0f64; FEATURE_COUNT];
        let mut std = vec![0.0f64; FEATURE_COUNT];
        for ex in examples {
            for (m, &f) in mean.iter_mut().zip(&ex.features) {
                *m += f;
            }
        }
        for m in &mut mean {
            *m /= examples.len() as f64;
        }
        for ex in examples {
            for ((s, &f), m) in std.iter_mut().zip(&ex.features).zip(&mean) {
                *s += (f - m) * (f - m);
            }
        }
        for s in &mut std {
            *s = (*s / examples.len() as f64).sqrt().max(1e-6);
        }
        let standardize = |features: &[f64]| -> Vec<f64> {
            features.iter().zip(&mean).zip(&std).map(|((&f, m), s)| (f - m) / s).collect()
        };

        let mut weights = vec![vec![0.0f64; FEATURE_COUNT + 1]; n_res];
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut order: Vec<usize> = (0..examples.len()).collect();
        let standardized: Vec<Vec<f64>> =
            examples.iter().map(|ex| standardize(&ex.features)).collect();

        for epoch in 0..config.epochs {
            order.shuffle(&mut rng);
            let lr = config.learning_rate / (1.0 + 0.05 * epoch as f64);
            for &idx in &order {
                let x = &standardized[idx];
                for (r, w) in weights.iter_mut().enumerate() {
                    let mut z = w[FEATURE_COUNT];
                    for (wi, xi) in w[..FEATURE_COUNT].iter().zip(x) {
                        z += wi * xi;
                    }
                    let p = sigmoid(z);
                    let y = if examples[idx].labels[r] { 1.0 } else { 0.0 };
                    let grad = p - y;
                    for (wi, xi) in w[..FEATURE_COUNT].iter_mut().zip(x) {
                        *wi -= lr * (grad * xi + config.l2 * *wi);
                    }
                    w[FEATURE_COUNT] -= lr * grad;
                }
            }
        }

        Ok(ScaleModel {
            resolutions: config.resolutions.clone(),
            preview_resolution: config.preview_resolution,
            weights,
            feature_mean: mean,
            feature_std: std,
        })
    }

    /// Candidate resolutions, in the order scores are reported.
    pub fn resolutions(&self) -> &[usize] {
        &self.resolutions
    }

    /// Preview resolution the model expects features to be extracted at.
    pub fn preview_resolution(&self) -> usize {
        self.preview_resolution
    }

    /// Predicted probability of backbone correctness at each candidate resolution.
    pub fn predict_scores(&self, features: &[f64]) -> Vec<f64> {
        let x: Vec<f64> = features
            .iter()
            .zip(&self.feature_mean)
            .zip(&self.feature_std)
            .map(|((&f, m), s)| (f - m) / s)
            .collect();
        self.weights
            .iter()
            .map(|w| {
                let mut z = w[FEATURE_COUNT];
                for (wi, xi) in w[..FEATURE_COUNT].iter().zip(&x) {
                    z += wi * xi;
                }
                sigmoid(z)
            })
            .collect()
    }

    /// The resolution with the highest predicted probability of a correct backbone
    /// prediction. Ties break towards the *lower* (cheaper) resolution.
    pub fn choose_resolution(&self, features: &[f64]) -> usize {
        let scores = self.predict_scores(features);
        let mut best = 0usize;
        for (i, &s) in scores.iter().enumerate() {
            if s > scores[best] + 1e-12 {
                best = i;
            }
        }
        self.resolutions[best]
    }
}

/// Builds training examples with the paper's cross-validation sharding (Figure 5) and
/// trains a [`ScaleModel`].
#[derive(Debug, Clone)]
pub struct ScaleModelTrainer {
    /// Model/training configuration.
    pub config: ScaleModelConfig,
    /// Backbone family whose correctness the model predicts.
    pub backbone: ModelKind,
    /// Dataset family (selects the oracle calibration).
    pub dataset_kind: DatasetKind,
    /// Crop ratios sampled during training (making the model crop-aware).
    pub crops: Vec<CropRatio>,
}

impl ScaleModelTrainer {
    /// Creates a trainer with the paper's four crop ratios.
    pub fn new(config: ScaleModelConfig, backbone: ModelKind, dataset_kind: DatasetKind) -> Self {
        let crops = CropRatio::PAPER_SET
            .iter()
            .map(|&a| CropRatio::new(a).expect("paper crop ratios are valid"))
            .collect();
        ScaleModelTrainer { config, backbone, dataset_kind, crops }
    }

    /// Builds the training examples for one (samples, oracle) pairing.
    fn examples_for(
        &self,
        samples: &Dataset,
        oracle: &AccuracyOracle,
    ) -> Result<Vec<TrainingExample>> {
        let mut examples = Vec::with_capacity(samples.len());
        for sample in samples {
            let crop = self.crops[(sample.id % self.crops.len() as u64) as usize];
            let image = sample.render()?;
            let preview = crop_and_resize_cow(&image, crop, self.config.preview_resolution)?;
            let features = extract_features(&preview)?;
            let labels = self
                .config
                .resolutions
                .iter()
                .map(|&res| {
                    let ctx =
                        EvalContext::full_quality(self.backbone, self.dataset_kind, res, crop);
                    oracle.is_correct(sample, &ctx)
                })
                .collect();
            examples.push(TrainingExample { features, labels });
        }
        Ok(examples)
    }

    /// Trains the scale model on `dataset` using `shards`-fold cross-validation: each
    /// shard's labels are produced by a backbone (oracle seed) trained on the *other*
    /// shards, exactly as in Figure 5.
    ///
    /// # Errors
    /// Returns an error if the dataset is empty or rendering fails.
    pub fn train(&self, dataset: &Dataset, shards: usize) -> Result<ScaleModel> {
        if dataset.is_empty() {
            return Err(CoreError::EmptyDataset);
        }
        let mut examples = Vec::with_capacity(dataset.len());
        for split in dataset.cross_validation(shards.max(1)) {
            // The backbone for this split is trained on `split.train`, i.e. it has not
            // seen `split.held_out`; we model that backbone as an oracle instance seeded
            // by the shard index.
            let oracle = AccuracyOracle::new(self.config.seed ^ (split.held_out_index as u64 + 1));
            examples.extend(self.examples_for(&split.held_out, &oracle)?);
        }
        ScaleModel::train(&self.config, &examples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescnn_data::DatasetSpec;

    fn small_config() -> ScaleModelConfig {
        ScaleModelConfig { resolutions: vec![112, 224, 336, 448], epochs: 30, ..Default::default() }
    }

    fn synthetic_examples(n: usize) -> Vec<TrainingExample> {
        // Feature 7+8 (extents) decide which resolution is right, mimicking the real
        // relationship between apparent object size and preferred resolution.
        (0..n)
            .map(|i| {
                let extent = (i % 10) as f64 / 10.0;
                let mut features = vec![0.5; FEATURE_COUNT];
                features[7] = extent;
                features[8] = extent;
                // Small apparent objects (small extent) want high resolution and vice versa.
                let labels = vec![extent > 0.6, extent > 0.35, extent > 0.15, extent <= 0.45];
                TrainingExample { features, labels }
            })
            .collect()
    }

    #[test]
    fn training_rejects_degenerate_inputs() {
        let config = small_config();
        assert!(matches!(ScaleModel::train(&config, &[]), Err(CoreError::EmptyDataset)));
        let bad = TrainingExample { features: vec![0.0; 3], labels: vec![true; 4] };
        assert!(ScaleModel::train(&config, &[bad]).is_err());
        let bad_labels =
            TrainingExample { features: vec![0.0; FEATURE_COUNT], labels: vec![true; 2] };
        assert!(ScaleModel::train(&config, &[bad_labels]).is_err());
        let empty_res = ScaleModelConfig { resolutions: vec![], ..small_config() };
        let ok = TrainingExample { features: vec![0.0; FEATURE_COUNT], labels: vec![] };
        assert!(ScaleModel::train(&empty_res, &[ok]).is_err());
    }

    #[test]
    fn model_learns_a_separable_rule() {
        let config = small_config();
        let examples = synthetic_examples(400);
        let model = ScaleModel::train(&config, &examples).unwrap();
        assert_eq!(model.resolutions(), &[112, 224, 336, 448]);
        assert_eq!(model.preview_resolution(), 112);
        // Large apparent object -> low resolution preferred; small -> high resolution.
        let mut big_object = vec![0.5; FEATURE_COUNT];
        big_object[7] = 0.95;
        big_object[8] = 0.95;
        let mut small_object = vec![0.5; FEATURE_COUNT];
        small_object[7] = 0.05;
        small_object[8] = 0.05;
        let big_choice = model.choose_resolution(&big_object);
        let small_choice = model.choose_resolution(&small_object);
        assert!(big_choice < small_choice, "big {big_choice} vs small {small_choice}");
        // Scores are probabilities.
        for s in model.predict_scores(&big_object) {
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn training_is_deterministic() {
        let config = small_config();
        let examples = synthetic_examples(100);
        let a = ScaleModel::train(&config, &examples).unwrap();
        let b = ScaleModel::train(&config, &examples).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn end_to_end_trainer_produces_useful_model() {
        // Train on a small synthetic Cars-like dataset and verify that the model's chosen
        // resolution beats always choosing the lowest resolution, in oracle accuracy.
        let config = ScaleModelConfig {
            resolutions: vec![112, 224, 336, 448],
            epochs: 40,
            ..Default::default()
        };
        let trainer = ScaleModelTrainer::new(config, ModelKind::ResNet18, DatasetKind::CarsLike);
        let train_set = DatasetSpec::cars_like().with_len(90).with_max_dimension(112).build(5);
        let model = trainer.train(&train_set, 3).unwrap();

        let test_set = DatasetSpec::cars_like().with_len(60).with_max_dimension(112).build(99);
        let oracle = AccuracyOracle::new(1234);
        let crop = CropRatio::new(0.56).unwrap();
        let mut dynamic_correct = 0usize;
        let mut low_correct = 0usize;
        for sample in &test_set {
            let image = sample.render().unwrap();
            let preview = crop_and_resize_cow(&image, crop, 112).unwrap();
            let features = extract_features(&preview).unwrap();
            let chosen = model.choose_resolution(&features);
            let ctx_dyn =
                EvalContext::full_quality(ModelKind::ResNet18, DatasetKind::CarsLike, chosen, crop);
            let ctx_low =
                EvalContext::full_quality(ModelKind::ResNet18, DatasetKind::CarsLike, 112, crop);
            dynamic_correct += usize::from(oracle.is_correct(sample, &ctx_dyn));
            low_correct += usize::from(oracle.is_correct(sample, &ctx_low));
        }
        assert!(
            dynamic_correct > low_correct,
            "dynamic ({dynamic_correct}) should beat static-112 ({low_correct})"
        );
    }

    #[test]
    fn trainer_rejects_empty_dataset() {
        let trainer =
            ScaleModelTrainer::new(small_config(), ModelKind::ResNet18, DatasetKind::ImageNetLike);
        let empty = DatasetSpec::imagenet_like().with_len(0).build(0);
        assert!(matches!(trainer.train(&empty, 4), Err(CoreError::EmptyDataset)));
    }
}
