//! End-to-end accuracy gate for the int8 quantized kernel arm.
//!
//! The tensor layer's shape-pure probe (`rescnn_tensor::int8_unit_error`)
//! bounds one convolution's quantization error; this module asks the question
//! a deployment actually cares about: **does running the whole backbone
//! quantized change its answers?** For each candidate resolution the gate runs
//! seeded synthetic forwards twice — once on the f32 engine, once with every
//! eligible convolution forced onto [`ConvAlgo::Int8`](rescnn_tensor::ConvAlgo)
//! via a scoped dispatch table — and compares the outputs on two axes:
//!
//! * **top-1 agreement** — the fraction of probe inputs whose argmax class is
//!   unchanged, the quantity the paper's accuracy tables are built from; and
//! * **distribution similarity** — a single-window SSIM-style statistic over
//!   the two softmax distributions (the same luminance/contrast/structure
//!   product the imaging stack uses, applied to probability vectors), which
//!   catches confidence erosion long before it flips an argmax.
//!
//! A resolution is **admitted** only when both clear their configured floors.
//! The SLO scheduler consults the gate before demoting a request to the
//! quantized arm ([`SloOptions::with_precision_demotion`]
//! (crate::SloOptions::with_precision_demotion)): resolutions the gate did not
//! admit never run quantized, no matter how late the queue is running.
//!
//! Everything is deterministic — seeded weights, seeded probe inputs, and the
//! engine's own bitwise reproducibility — so a gate decision is a property of
//! (backbone, resolution, config), not of the run.

use std::collections::BTreeMap;

use serde::Serialize;

use rescnn_models::{ModelKind, Network};
use rescnn_tensor::{
    with_algo_calibration_scope, AlgoCalibration, ConvAlgo, ConvShapeKey, Shape, Tensor,
};
use std::sync::Arc;

use crate::error::{CoreError, Result};

/// Configuration of the end-to-end int8 accuracy gate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PrecisionGateConfig {
    /// Seeded probe inputs per resolution (more probes, tighter estimate).
    pub samples: usize,
    /// Seed for the probe network's weights and the probe inputs.
    pub seed: u64,
    /// Minimum fraction of probes whose top-1 class must survive quantization.
    pub min_top1_agreement: f64,
    /// Minimum SSIM-style similarity between the f32 and int8 softmax
    /// distributions, averaged over the probes.
    pub min_distribution_similarity: f64,
}

impl Default for PrecisionGateConfig {
    fn default() -> Self {
        PrecisionGateConfig {
            samples: 3,
            seed: 0x1207,
            min_top1_agreement: 1.0,
            min_distribution_similarity: 0.9,
        }
    }
}

/// The gate's measurement for one resolution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PrecisionVerdict {
    /// Resolution the probes ran at.
    pub resolution: usize,
    /// Fraction of probes whose top-1 class was unchanged under int8.
    pub top1_agreement: f64,
    /// Mean SSIM-style similarity between f32 and int8 softmax distributions.
    pub distribution_similarity: f64,
    /// Whether both floors were cleared.
    pub admitted: bool,
}

/// Per-resolution admission decisions for the quantized arm (see the module
/// docs for the measurement procedure).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PrecisionGate {
    config: PrecisionGateConfig,
    verdicts: BTreeMap<usize, PrecisionVerdict>,
}

impl PrecisionGate {
    /// Runs the gate for `backbone` over every resolution in `resolutions`.
    ///
    /// # Errors
    /// Returns an error if a probe forward fails (resolution too small for the
    /// backbone's downsampling schedule).
    pub fn evaluate(
        backbone: ModelKind,
        num_classes: usize,
        resolutions: &[usize],
        config: PrecisionGateConfig,
    ) -> Result<Self> {
        if config.samples == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "precision gate needs at least one probe sample".into(),
            });
        }
        let mut verdicts = BTreeMap::new();
        for &resolution in resolutions {
            let verdict = Self::measure(backbone, num_classes, resolution, &config)?;
            verdicts.insert(resolution, verdict);
        }
        Ok(PrecisionGate { config, verdicts })
    }

    /// A gate that admits nothing — the state of a deployment that never
    /// opted into quantization. Demotion checks against it always decline.
    pub fn deny_all() -> Self {
        PrecisionGate { config: PrecisionGateConfig::default(), verdicts: BTreeMap::new() }
    }

    /// A gate whose admissions were decided elsewhere — an offline validation
    /// run whose conclusions a deployment trusts: admits exactly the given
    /// resolutions (recorded with perfect scores, since no probe ran here).
    pub fn from_admitted(resolutions: impl IntoIterator<Item = usize>) -> Self {
        let verdicts = resolutions
            .into_iter()
            .map(|resolution| {
                (
                    resolution,
                    PrecisionVerdict {
                        resolution,
                        top1_agreement: 1.0,
                        distribution_similarity: 1.0,
                        admitted: true,
                    },
                )
            })
            .collect();
        PrecisionGate { config: PrecisionGateConfig::default(), verdicts }
    }

    /// Whether the gate admits running `resolution` on the quantized arm.
    /// Unmeasured resolutions are never admitted.
    pub fn admits(&self, resolution: usize) -> bool {
        self.verdicts.get(&resolution).map(|v| v.admitted).unwrap_or(false)
    }

    /// The per-resolution measurements, ascending by resolution.
    pub fn verdicts(&self) -> impl Iterator<Item = &PrecisionVerdict> {
        self.verdicts.values()
    }

    /// The configuration the verdicts were measured under.
    pub fn config(&self) -> &PrecisionGateConfig {
        &self.config
    }

    /// The dispatch table that forces every int8-eligible convolution of
    /// `backbone` at `resolution` onto the quantized arm (ineligible shapes —
    /// grouped/depthwise convolutions — keep their f32 kernels). This is the
    /// same table the SLO scheduler scopes around a demoted bucket, so the
    /// gate measures exactly what demoted execution runs.
    pub fn int8_dispatch(
        backbone: ModelKind,
        num_classes: usize,
        resolution: usize,
    ) -> Arc<AlgoCalibration> {
        let mut table = AlgoCalibration::new();
        if let Ok(layers) = backbone.arch(num_classes).conv_layers(resolution) {
            for layer in layers {
                if ConvAlgo::Int8.supports(&layer.params) {
                    table.set(ConvShapeKey::new(layer.params, layer.input), ConvAlgo::Int8);
                }
            }
        }
        Arc::new(table)
    }

    fn measure(
        backbone: ModelKind,
        num_classes: usize,
        resolution: usize,
        config: &PrecisionGateConfig,
    ) -> Result<PrecisionVerdict> {
        let mut network = Network::new(backbone, num_classes, config.seed);
        let inputs: Vec<Tensor> = (0..config.samples)
            .map(|i| {
                Tensor::random_uniform(
                    Shape::chw(3, resolution, resolution),
                    1.0,
                    config.seed ^ ((i as u64 + 1) * 0x9e37) ^ resolution as u64,
                )
            })
            .collect();
        // Record activation ranges over every probe first, so the quantized
        // forwards run exactly as a calibrated deployment would: grids fixed
        // by calibration, not re-derived per request.
        for input in &inputs {
            network.calibrate_int8_ranges(input).map_err(forward_error(resolution))?;
        }
        let table = Self::int8_dispatch(backbone, num_classes, resolution);
        let mut agreements = 0usize;
        let mut similarity_sum = 0.0f64;
        for input in &inputs {
            let f32_probs =
                network.predict_probabilities(input).map_err(forward_error(resolution))?;
            let int8_probs = with_algo_calibration_scope(Arc::clone(&table), || {
                network.predict_probabilities(input)
            })
            .map_err(forward_error(resolution))?;
            let f32_probs = f32_probs.as_slice();
            let int8_probs = int8_probs.as_slice();
            if argmax(f32_probs) == argmax(int8_probs) {
                agreements += 1;
            }
            similarity_sum += distribution_similarity(f32_probs, int8_probs);
        }
        let top1_agreement = agreements as f64 / config.samples as f64;
        let distribution_similarity = similarity_sum / config.samples as f64;
        Ok(PrecisionVerdict {
            resolution,
            top1_agreement,
            distribution_similarity,
            admitted: top1_agreement >= config.min_top1_agreement
                && distribution_similarity >= config.min_distribution_similarity,
        })
    }
}

fn forward_error(resolution: usize) -> impl Fn(rescnn_models::ModelError) -> CoreError {
    move |e| CoreError::InvalidConfig { reason: format!("precision probe at {resolution}: {e}") }
}

fn argmax(values: &[f32]) -> usize {
    let mut best = 0usize;
    for (i, &v) in values.iter().enumerate() {
        if v > values[best] {
            best = i;
        }
    }
    best
}

/// Single-window SSIM over two probability vectors: the standard
/// `(2μxμy+c1)(2σxy+c2) / ((μx²+μy²+c1)(σx²+σy²+c2))` statistic with the
/// conventional constants for a unit dynamic range. Identical distributions
/// score 1.0; the score decays smoothly as quantization shifts mass around.
fn distribution_similarity(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().max(1) as f64;
    let (mut mean_a, mut mean_b) = (0.0f64, 0.0f64);
    for (&x, &y) in a.iter().zip(b) {
        mean_a += f64::from(x);
        mean_b += f64::from(y);
    }
    mean_a /= n;
    mean_b /= n;
    let (mut var_a, mut var_b, mut cov) = (0.0f64, 0.0f64, 0.0f64);
    for (&x, &y) in a.iter().zip(b) {
        let dx = f64::from(x) - mean_a;
        let dy = f64::from(y) - mean_b;
        var_a += dx * dx;
        var_b += dy * dy;
        cov += dx * dy;
    }
    var_a /= n;
    var_b /= n;
    cov /= n;
    const C1: f64 = 0.01 * 0.01;
    const C2: f64 = 0.03 * 0.03;
    ((2.0 * mean_a * mean_b + C1) * (2.0 * cov + C2))
        / ((mean_a * mean_a + mean_b * mean_b + C1) * (var_a + var_b + C2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescnn_data::DatasetKind;

    #[test]
    fn similarity_is_one_for_identical_distributions() {
        let p = [0.7f32, 0.2, 0.1];
        assert!((distribution_similarity(&p, &p) - 1.0).abs() < 1e-12);
        let q = [0.1f32, 0.2, 0.7];
        assert!(distribution_similarity(&p, &q) < 1.0);
    }

    #[test]
    fn gate_is_deterministic_and_bounded() {
        let classes = DatasetKind::CarsLike.num_classes();
        let config = PrecisionGateConfig { samples: 2, ..Default::default() };
        let gate =
            PrecisionGate::evaluate(ModelKind::ResNet18, classes, &[48, 64], config).unwrap();
        let again =
            PrecisionGate::evaluate(ModelKind::ResNet18, classes, &[48, 64], config).unwrap();
        let verdicts: Vec<_> = gate.verdicts().copied().collect();
        assert_eq!(verdicts, again.verdicts().copied().collect::<Vec<_>>());
        assert_eq!(verdicts.len(), 2);
        for v in &verdicts {
            assert!((0.0..=1.0).contains(&v.top1_agreement));
            assert!(v.distribution_similarity <= 1.0 + 1e-12);
            assert_eq!(
                v.admitted,
                v.top1_agreement >= config.min_top1_agreement
                    && v.distribution_similarity >= config.min_distribution_similarity
            );
        }
        // Unmeasured resolutions are never admitted, and neither is anything
        // under the deny-all gate.
        assert!(!gate.admits(999));
        assert!(!PrecisionGate::deny_all().admits(48));
    }

    #[test]
    fn impossible_floors_reject_every_resolution() {
        let classes = DatasetKind::CarsLike.num_classes();
        let strict = PrecisionGateConfig {
            samples: 1,
            // A similarity floor above 1.0 is unreachable by construction.
            min_distribution_similarity: 1.5,
            ..Default::default()
        };
        let gate = PrecisionGate::evaluate(ModelKind::ResNet18, classes, &[48], strict).unwrap();
        assert!(!gate.admits(48));
        assert!(PrecisionGate::evaluate(
            ModelKind::ResNet18,
            classes,
            &[48],
            PrecisionGateConfig { samples: 0, ..Default::default() }
        )
        .is_err());
    }

    #[test]
    fn int8_dispatch_covers_eligible_shapes_only() {
        let classes = DatasetKind::CarsLike.num_classes();
        let table = PrecisionGate::int8_dispatch(ModelKind::MobileNetV2, classes, 64);
        // MobileNetV2 is full of depthwise convolutions the int8 arm cannot
        // run; the table must cover the pointwise layers and skip those.
        let layers = ModelKind::MobileNetV2.arch(classes).conv_layers(64).unwrap();
        assert!(layers.iter().any(|l| !ConvAlgo::Int8.supports(&l.params)));
        for layer in &layers {
            let entry = table.get(&ConvShapeKey::new(layer.params, layer.input));
            if ConvAlgo::Int8.supports(&layer.params) {
                assert_eq!(entry, Some(ConvAlgo::Int8));
            } else {
                assert_eq!(entry, None);
            }
        }
    }
}
