//! Error type for the dynamic-resolution pipeline.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Error raised by pipeline construction, calibration, training, or inference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CoreError {
    /// An image-processing step failed.
    Imaging(String),
    /// The progressive codec failed.
    Codec(String),
    /// A model/architecture operation failed.
    Model(String),
    /// The configuration is inconsistent (empty resolution set, bad thresholds, …).
    InvalidConfig {
        /// Explanation of the defect.
        reason: String,
    },
    /// A dataset required for training or calibration was empty.
    EmptyDataset,
    /// A request's plan/execute stage panicked and was isolated to this record
    /// (the panic never escapes the serving layer; see `BatchScheduler` /
    /// `SloScheduler`).
    Panicked {
        /// The rendered panic payload.
        message: String,
    },
    /// The request's execution was cooperatively cancelled before or during
    /// its run (watchdog overrun, superseded work); no result was produced and
    /// any partially-computed data was discarded.
    Cancelled {
        /// Why the execution was cancelled.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Imaging(msg) => write!(f, "imaging error: {msg}"),
            CoreError::Codec(msg) => write!(f, "codec error: {msg}"),
            CoreError::Model(msg) => write!(f, "model error: {msg}"),
            CoreError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            CoreError::EmptyDataset => write!(f, "dataset must contain at least one sample"),
            CoreError::Panicked { message } => write!(f, "request panicked: {message}"),
            CoreError::Cancelled { reason } => write!(f, "request cancelled: {reason}"),
        }
    }
}

impl Error for CoreError {}

impl From<rescnn_imaging::ImagingError> for CoreError {
    fn from(err: rescnn_imaging::ImagingError) -> Self {
        CoreError::Imaging(err.to_string())
    }
}

impl From<rescnn_projpeg::CodecError> for CoreError {
    fn from(err: rescnn_projpeg::CodecError) -> Self {
        CoreError::Codec(err.to_string())
    }
}

impl From<rescnn_models::ModelError> for CoreError {
    fn from(err: rescnn_models::ModelError) -> Self {
        CoreError::Model(err.to_string())
    }
}

impl From<rescnn_hwsim::HwError> for CoreError {
    fn from(err: rescnn_hwsim::HwError) -> Self {
        CoreError::Model(err.to_string())
    }
}

/// Why [`SloServer::submit`](crate::SloServer::submit) refused a request.
///
/// Every refusal is typed and immediate — the server never silently drops a
/// submission. `QueueFull` is the backpressure signal: the bounded submission
/// queue is at capacity and the caller should retry later (or shed upstream).
/// `Draining` and `Stopped` are lifecycle signals: the server no longer
/// accepts new work, permanently.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum SubmitError {
    /// The bounded submission queue is at capacity; retry after completions
    /// drain or shed the request upstream.
    QueueFull {
        /// The configured queue bound the submission ran into.
        capacity: usize,
    },
    /// Shutdown has begun: the server is draining in-flight work and accepts
    /// no new submissions.
    Draining,
    /// The event loop has terminated (drained, or its worker died).
    Stopped,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "submission queue full (capacity {capacity}); apply backpressure")
            }
            SubmitError::Draining => write!(f, "server is draining; new submissions are rejected"),
            SubmitError::Stopped => write!(f, "server is stopped"),
        }
    }
}

impl Error for SubmitError {}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        assert!(CoreError::EmptyDataset.to_string().contains("at least one"));
        assert!(CoreError::InvalidConfig { reason: "no resolutions".into() }
            .to_string()
            .contains("no resolutions"));
        let e: CoreError = rescnn_imaging::ImagingError::EmptyImage.into();
        assert!(e.to_string().contains("imaging"));
        let e: CoreError = rescnn_projpeg::CodecError::InvalidQuality { quality: 0 }.into();
        assert!(e.to_string().contains("codec"));
        let e: CoreError = rescnn_models::ModelError::BadInput { reason: "x".into() }.into();
        assert!(e.to_string().contains("model"));
        let e: CoreError = rescnn_hwsim::HwError::Model("y".into()).into();
        assert!(e.to_string().contains("model"));
        let e = CoreError::Panicked { message: "index out of bounds".into() };
        assert!(e.to_string().contains("panicked"));
        assert!(e.to_string().contains("index out of bounds"));
        let e = CoreError::Cancelled { reason: "watchdog: 10x over estimate".into() };
        assert!(e.to_string().contains("cancelled"));
        assert!(e.to_string().contains("watchdog"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
