//! Sweep-once-on-boot serving calibration.
//!
//! A serving deployment wants measurement-driven conv dispatch
//! ([`rescnn_tensor::AlgoCalibration`]) without blocking start-up on a
//! wall-clock sweep and without shipping a pre-measured file for every host
//! type. [`start_boot_calibration`] runs the [`MeasuredTuner`] sweep for the
//! deployed backbone's layer shapes — at every resolution the deployment
//! serves — on a background thread, then atomically installs the
//! measured-fastest table process-wide (merged over any already-installed
//! entries, in one locked step) the moment it is ready.
//!
//! Until the sweep finishes, dispatch simply keeps using its current defaults
//! (heuristics or a previously persisted table), so serving starts instantly
//! and upgrades itself in place; the batch scheduler's per-bucket dispatch
//! caches notice the install via the calibration generation and re-resolve.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use rescnn_hwsim::{CalibratedCostModel, CpuProfile, MeasuredSweepConfig, MeasuredTuner};
use rescnn_models::ModelKind;
use rescnn_tensor::{merge_algo_calibration, ConvAlgo, ConvShapeKey};

use crate::error::{CoreError, Result};

/// What the boot sweep measures.
#[derive(Debug, Clone)]
pub struct BootCalibrationConfig {
    /// Backbone whose layer shapes are swept.
    pub backbone: ModelKind,
    /// Resolutions the deployment serves (one sweep covers all buckets; shapes
    /// shared between resolutions are measured once).
    pub resolutions: Vec<usize>,
    /// Sweep parameters (repetitions, threads, prepacked timing).
    pub sweep: MeasuredSweepConfig,
    /// When set, the measured model is persisted here afterwards, so later
    /// processes can warm-start via
    /// [`PipelineConfig::with_conv_calibration`](crate::PipelineConfig::with_conv_calibration).
    pub persist_path: Option<String>,
}

impl BootCalibrationConfig {
    /// A sweep over the given backbone and resolution ladder with default
    /// sweep parameters and no persistence.
    pub fn new(backbone: ModelKind, resolutions: Vec<usize>) -> Self {
        BootCalibrationConfig {
            backbone,
            resolutions,
            sweep: MeasuredSweepConfig::default(),
            persist_path: None,
        }
    }

    /// Persists the measured model after installation.
    pub fn with_persist_path(mut self, path: impl Into<String>) -> Self {
        self.persist_path = Some(path.into());
        self
    }
}

/// Handle to a background boot-calibration sweep.
#[derive(Debug)]
pub struct BootCalibration {
    ready: Arc<AtomicBool>,
    outcome: SweepOutcome,
}

/// Where the sweep ran: its own thread (the normal case) or inline on the
/// caller when the thread could not be spawned (resource exhaustion must
/// degrade to a slower boot, not a panic).
#[derive(Debug)]
enum SweepOutcome {
    Thread(JoinHandle<Result<usize>>),
    Inline(Result<usize>),
}

impl BootCalibration {
    /// Whether the sweep has finished (and, on success, installed its table).
    pub fn is_ready(&self) -> bool {
        self.ready.load(Ordering::Acquire)
    }

    /// Blocks until the sweep finishes, returning the number of calibrated
    /// layer shapes it installed.
    ///
    /// # Errors
    /// Returns an error if the sweep failed (unservable resolution, persistence
    /// failure) or its thread panicked.
    pub fn wait(self) -> Result<usize> {
        match self.outcome {
            SweepOutcome::Thread(handle) => handle.join().map_err(|_| {
                CoreError::InvalidConfig { reason: "boot calibration panicked".into() }
            })?,
            SweepOutcome::Inline(outcome) => outcome,
        }
    }
}

/// Starts the boot sweep on a background thread and returns immediately.
///
/// Serving can begin at once; the measured dispatch table installs itself
/// process-wide when the sweep completes. Call [`BootCalibration::wait`] to
/// block on it (tests, offline tooling) or drop the handle to let it finish
/// detached.
pub fn start_boot_calibration(config: BootCalibrationConfig) -> BootCalibration {
    let ready = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&ready);
    let spawn_config = config.clone();
    let spawned =
        std::thread::Builder::new().name("rescnn-boot-calibration".into()).spawn(move || {
            let outcome = run_boot_sweep(&spawn_config);
            flag.store(true, Ordering::Release);
            outcome
        });
    match spawned {
        Ok(handle) => BootCalibration { ready, outcome: SweepOutcome::Thread(handle) },
        Err(_) => {
            // Out of threads: degrade to a synchronous sweep instead of panicking.
            let outcome = run_boot_sweep(&config);
            ready.store(true, Ordering::Release);
            BootCalibration { ready, outcome: SweepOutcome::Inline(outcome) }
        }
    }
}

/// The sweep body (also runnable synchronously by tooling): measures every
/// Winograd-eligible layer shape of the backbone across the resolution ladder
/// (the only shapes where dispatch is genuinely host-dependent — the 1×1 and
/// depthwise fast paths are structurally dominant), installs the
/// measured-fastest table merged over any existing installation, and optionally
/// persists the measured model.
///
/// # Errors
/// Returns an error if a resolution is too small for the backbone or the
/// persist path cannot be written.
pub fn run_boot_sweep(config: &BootCalibrationConfig) -> Result<usize> {
    // Class count does not affect conv layer shapes; use the ImageNet default.
    let arch = config.backbone.arch(1000);
    let tuner = MeasuredTuner::new(config.sweep);
    let mut model = CalibratedCostModel::new(CpuProfile::host());
    let mut seen = std::collections::HashSet::new();
    for &resolution in &config.resolutions {
        let layers = arch.conv_layers(resolution).map_err(|e| CoreError::InvalidConfig {
            reason: format!("boot sweep at {resolution}: {e}"),
        })?;
        for layer in &layers {
            if ConvAlgo::Winograd.supports(&layer.params)
                && seen.insert(ConvShapeKey::new(layer.params, layer.input))
            {
                for algo in [ConvAlgo::Im2colPacked, ConvAlgo::Winograd] {
                    let kernel = tuner.measure_algo(layer, algo, 1);
                    model.record(layer, kernel.algo, kernel.seconds);
                }
                // The α=6 arm joins the sweep only where its characterized
                // numerical gate admits the shape (see `MeasuredSweepConfig::
                // f4_tolerance`); rejected shapes keep the F(2×2)/im2col duel.
                if tuner.admits_f4(layer) {
                    let kernel = tuner.measure_algo(layer, ConvAlgo::WinogradF4, 1);
                    model.record(layer, kernel.algo, kernel.seconds);
                }
            }
        }
    }
    let measured = model.dispatch_table();
    let shapes = measured.len();
    // Merge into the installed table in one locked step: boot measurements win
    // for the shapes they cover, everything else is preserved, and a concurrent
    // installer can never be lost to a read-modify-write race.
    merge_algo_calibration(&measured);
    if let Some(path) = &config.persist_path {
        model.save(path).map_err(|e| CoreError::InvalidConfig {
            reason: format!("persisting boot calibration to {path}: {e}"),
        })?;
    }
    Ok(shapes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescnn_tensor::{
        install_algo_calibration, installed_algo_calibration, select_algo, AlgoCalibration,
    };

    #[test]
    fn boot_sweep_installs_and_persists_a_measured_table() {
        let _guard = crate::test_sync::calibration_lock();
        let previous = install_algo_calibration(None);
        // Pre-install an entry the sweep does not cover: the merge must keep it.
        let exotic_params = rescnn_tensor::Conv2dParams::new(19, 19, 3, 1, 1);
        let exotic_shape = rescnn_tensor::Shape::chw(19, 41, 41);
        let mut pre = AlgoCalibration::new();
        pre.set(ConvShapeKey::new(exotic_params, exotic_shape), ConvAlgo::Winograd);
        install_algo_calibration(Some(pre));

        let path = std::env::temp_dir()
            .join(format!("rescnn-boot-calibration-{}.txt", std::process::id()));
        let config = BootCalibrationConfig::new(ModelKind::ResNet18, vec![24, 32])
            .with_persist_path(path.to_string_lossy().to_string());
        let sweep = MeasuredSweepConfig { reps: 1, ..Default::default() };
        let boot = start_boot_calibration(BootCalibrationConfig { sweep, ..config });
        let shapes = boot.wait().expect("boot sweep succeeds");
        assert!(shapes > 0, "resnet18 has winograd-eligible shapes at 24/32");

        let installed = installed_algo_calibration().expect("sweep installs a table");
        assert!(installed.len() > shapes, "merge must keep the pre-installed entry");
        assert_eq!(
            installed.get(&ConvShapeKey::new(exotic_params, exotic_shape)),
            Some(ConvAlgo::Winograd)
        );
        // Every installed backbone entry steers default dispatch.
        let arch = ModelKind::ResNet18.arch(1000);
        let mut steered = 0;
        for layer in arch.conv_layers(32).unwrap() {
            if let Some(algo) = installed.get(&ConvShapeKey::new(layer.params, layer.input)) {
                assert_eq!(select_algo(&layer.params, layer.input), algo);
                steered += 1;
            }
        }
        assert!(steered > 0);
        assert!(path.exists(), "sweep persists the measured model");

        std::fs::remove_file(&path).ok();
        install_algo_calibration(previous.map(|t| (*t).clone()));
    }

    #[test]
    fn boot_sweep_rejects_impossible_resolutions() {
        let _guard = crate::test_sync::calibration_lock();
        let config = BootCalibrationConfig::new(ModelKind::ResNet18, vec![0]);
        let boot = start_boot_calibration(config);
        assert!(boot.wait().is_err());
    }

    #[test]
    fn readiness_flag_flips_after_completion() {
        let _guard = crate::test_sync::calibration_lock();
        let previous = install_algo_calibration(None);
        let sweep = MeasuredSweepConfig { reps: 1, ..Default::default() };
        let config = BootCalibrationConfig {
            sweep,
            ..BootCalibrationConfig::new(ModelKind::ResNet18, vec![16])
        };
        let boot = start_boot_calibration(config);
        // Serving would proceed here; poll until the background sweep lands.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        while !boot.is_ready() && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert!(boot.is_ready(), "sweep must finish well within the deadline");
        // At 16² the post-stem spatial extents still leave eligible 3×3 layers.
        assert!(boot.wait().unwrap() > 0);
        install_algo_calibration(previous.map(|t| (*t).clone()));
    }
}
