//! Deterministic record/replay traces for the serving front-end.
//!
//! A live [`SloServer`](crate::SloServer) run is driven by the wall clock:
//! requests arrive whenever clients submit them, and the admission core steps
//! whenever the event loop wakes. Every admission decision, however, is a pure
//! function of (a) the request stamps (arrival, deadline, cost multiplier,
//! source), (b) the order in which requests became visible to the core, and
//! (c) the sequence of `now` values the core was stepped at — never of the
//! wall clock itself. A [`ServingTrace`] records exactly those inputs (plus
//! the decisions they produced), so replaying the trace through the
//! virtual-clock [`SloScheduler`](crate::SloScheduler) reproduces the live
//! run's admission decisions bitwise: any production incident becomes a
//! deterministic regression test.
//!
//! # Replay-determinism contract
//!
//! Replay is bitwise-exact for every run that drained gracefully
//! ([`ServingTrace::replayable`] is `true`). A run that hit its drain
//! deadline mid-step ([`hard_cancelled`](ServingTrace::hard_cancelled)) had
//! in-flight executions refused by a wall-timed [`CancellationToken`]
//! (rescnn_tensor) — an inherently wall-dependent cut — so such traces replay
//! best-effort: the recorded steps replay exactly, and the remaining pending
//! work is cancelled at the same step boundary.
//!
//! # Persistence
//!
//! Traces persist as a line-oriented text format with `f64` fields stored as
//! their IEEE-754 bit patterns in hex (decimal formatting would not round-trip
//! bitwise). The offline `serde` compatibility stub cannot deserialize, so the
//! format is hand-rolled, mirroring `CalibratedCostModel::save`/`load`.

use std::fmt::Write as _;
use std::path::Path;

use serde::Serialize;

use crate::error::{CoreError, Result};
use crate::slo::{Rejected, SloOutcome};

/// The timing stamps of one recorded request, in submission (ticket) order.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TraceRequest {
    /// Arrival stamp (wall milliseconds since server start for live runs,
    /// virtual milliseconds for recorded batch drains).
    pub arrival_ms: f64,
    /// Absolute completion deadline on the same clock.
    pub deadline_ms: f64,
    /// Service-time multiplier the request carried.
    pub cost_multiplier: f64,
    /// Originating source id, when the request was breaker-gated.
    pub source: Option<u64>,
    /// Number of admission steps that had already run when this request
    /// became visible to the core — replay feeds the request in immediately
    /// before step `enqueued_step`, reproducing submission/step interleaving
    /// exactly (a request can arrive mid-drain and only be seen two steps
    /// later; eligibility alone cannot reconstruct that).
    pub enqueued_step: usize,
}

/// The admission decision one request received.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TraceDecision {
    /// Executed to completion.
    Served {
        /// Resolution the scale model planned.
        planned: usize,
        /// Resolution actually served (`< planned` means degraded).
        served: usize,
        /// Served on the quantized arm (precision demotion).
        int8: bool,
    },
    /// Shed by admission control (`Rejected::Overloaded`).
    Shed,
    /// Expired before service could start (`Rejected::DeadlineExceeded`).
    Expired,
    /// Shed at the gate by an open circuit breaker (`Rejected::CircuitOpen`).
    BreakerShed,
    /// The request's own plan/execute stage failed (isolated fault, contained
    /// panic, retry budget exhausted, or drain cancellation).
    Failed,
}

impl TraceDecision {
    /// Classifies a settled outcome (`int8` is the request's
    /// precision-demotion flag; only meaningful for completions).
    pub fn from_outcome(outcome: &SloOutcome, int8: bool) -> Self {
        match outcome {
            SloOutcome::Completed(done) => TraceDecision::Served {
                planned: done.planned_resolution,
                served: done.served_resolution,
                int8,
            },
            SloOutcome::Rejected(Rejected::Overloaded) => TraceDecision::Shed,
            SloOutcome::Rejected(Rejected::DeadlineExceeded) => TraceDecision::Expired,
            SloOutcome::Rejected(Rejected::CircuitOpen) => TraceDecision::BreakerShed,
            SloOutcome::Failed(_) => TraceDecision::Failed,
        }
    }
}

/// A recorded serving run: request stamps, step boundaries, and the decisions
/// they produced. See the [module docs](self) for the determinism contract.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct ServingTrace {
    /// Request stamps in submission (ticket) order.
    pub requests: Vec<TraceRequest>,
    /// The `now` value of every admission step that processed at least one
    /// attempt, in order.
    pub steps: Vec<f64>,
    /// Per-request decision, in submission order (filled when the run
    /// finishes).
    pub decisions: Vec<TraceDecision>,
    /// The run hit its drain deadline and hard-cancelled pending work; replay
    /// of the cancelled tail is best-effort rather than bitwise.
    pub hard_cancelled: bool,
}

impl ServingTrace {
    /// Number of recorded requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace recorded no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Whether replay is guaranteed bitwise (the run drained gracefully).
    pub fn replayable(&self) -> bool {
        !self.hard_cancelled
    }

    /// Serializes the trace to `path` in the bit-exact text format.
    ///
    /// # Errors
    /// Returns an error if the file cannot be written.
    pub fn save(&self, path: &Path) -> Result<()> {
        std::fs::write(path, self.to_text()).map_err(|error| CoreError::InvalidConfig {
            reason: format!("writing serving trace to {}: {error}", path.display()),
        })
    }

    /// Renders the trace in the bit-exact text format (what [`save`](Self::save)
    /// writes).
    pub fn to_text(&self) -> String {
        let mut text = String::new();
        let _ = writeln!(text, "rescnn-serving-trace v1");
        let _ = writeln!(text, "hard_cancelled {}", u8::from(self.hard_cancelled));
        let _ = writeln!(text, "requests {}", self.requests.len());
        for request in &self.requests {
            let source = request.source.map_or_else(|| "-".to_string(), |s| s.to_string());
            let _ = writeln!(
                text,
                "req {:016x} {:016x} {:016x} {source} {}",
                request.arrival_ms.to_bits(),
                request.deadline_ms.to_bits(),
                request.cost_multiplier.to_bits(),
                request.enqueued_step,
            );
        }
        let _ = writeln!(text, "steps {}", self.steps.len());
        for &now_ms in &self.steps {
            let _ = writeln!(text, "step {:016x}", now_ms.to_bits());
        }
        let _ = writeln!(text, "decisions {}", self.decisions.len());
        for decision in &self.decisions {
            let _ = match decision {
                TraceDecision::Served { planned, served, int8 } => {
                    writeln!(text, "served {planned} {served} {}", u8::from(*int8))
                }
                TraceDecision::Shed => writeln!(text, "shed"),
                TraceDecision::Expired => writeln!(text, "expired"),
                TraceDecision::BreakerShed => writeln!(text, "breaker_shed"),
                TraceDecision::Failed => writeln!(text, "failed"),
            };
        }
        text
    }

    /// Loads a trace previously written by [`save`](Self::save).
    ///
    /// # Errors
    /// Returns an error if the file cannot be read or is malformed.
    pub fn load(path: &Path) -> Result<Self> {
        let text = std::fs::read_to_string(path).map_err(|error| CoreError::InvalidConfig {
            reason: format!("reading serving trace from {}: {error}", path.display()),
        })?;
        Self::from_text(&text).map_err(|error| CoreError::InvalidConfig {
            reason: format!("in serving trace {}: {error}", path.display()),
        })
    }

    /// Parses the bit-exact text format (what [`to_text`](Self::to_text)
    /// renders).
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidConfig`] on a malformed trace.
    pub fn from_text(text: &str) -> Result<Self> {
        Self::parse(text).map_err(|reason| CoreError::InvalidConfig {
            reason: format!("malformed serving trace: {reason}"),
        })
    }

    fn parse(text: &str) -> std::result::Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty file")?;
        if header.trim() != "rescnn-serving-trace v1" {
            return Err(format!("unrecognized header {header:?}"));
        }
        let mut trace = ServingTrace::default();
        for line in lines {
            let mut fields = line.split_whitespace();
            let Some(tag) = fields.next() else { continue };
            match tag {
                "hard_cancelled" => trace.hard_cancelled = next_usize(&mut fields)? != 0,
                "requests" | "steps" | "decisions" => {
                    // Section counts are informational; entries self-describe.
                    let _ = next_usize(&mut fields)?;
                }
                "req" => {
                    let arrival_ms = next_bits(&mut fields)?;
                    let deadline_ms = next_bits(&mut fields)?;
                    let cost_multiplier = next_bits(&mut fields)?;
                    let source = match fields.next().ok_or("req missing source")? {
                        "-" => None,
                        raw => Some(raw.parse::<u64>().map_err(|e| format!("source: {e}"))?),
                    };
                    let enqueued_step = next_usize(&mut fields)?;
                    trace.requests.push(TraceRequest {
                        arrival_ms,
                        deadline_ms,
                        cost_multiplier,
                        source,
                        enqueued_step,
                    });
                }
                "step" => trace.steps.push(next_bits(&mut fields)?),
                "served" => {
                    let planned = next_usize(&mut fields)?;
                    let served = next_usize(&mut fields)?;
                    let int8 = next_usize(&mut fields)? != 0;
                    trace.decisions.push(TraceDecision::Served { planned, served, int8 });
                }
                "shed" => trace.decisions.push(TraceDecision::Shed),
                "expired" => trace.decisions.push(TraceDecision::Expired),
                "breaker_shed" => trace.decisions.push(TraceDecision::BreakerShed),
                "failed" => trace.decisions.push(TraceDecision::Failed),
                other => return Err(format!("unrecognized line tag {other:?}")),
            }
        }
        if trace.decisions.len() != trace.requests.len() && !trace.decisions.is_empty() {
            return Err(format!(
                "{} decisions for {} requests",
                trace.decisions.len(),
                trace.requests.len()
            ));
        }
        Ok(trace)
    }
}

fn next_bits<'s>(fields: &mut impl Iterator<Item = &'s str>) -> std::result::Result<f64, String> {
    let raw = fields.next().ok_or("missing f64 bits field")?;
    u64::from_str_radix(raw, 16).map(f64::from_bits).map_err(|e| format!("f64 bits {raw:?}: {e}"))
}

fn next_usize<'s>(
    fields: &mut impl Iterator<Item = &'s str>,
) -> std::result::Result<usize, String> {
    let raw = fields.next().ok_or("missing integer field")?;
    raw.parse::<usize>().map_err(|e| format!("integer {raw:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> ServingTrace {
        ServingTrace {
            requests: vec![
                TraceRequest {
                    arrival_ms: 0.125,
                    deadline_ms: 50.0,
                    cost_multiplier: 1.0,
                    source: Some(7),
                    enqueued_step: 0,
                },
                TraceRequest {
                    // A non-terminating decimal expansion: round-tripping it
                    // is exactly what decimal formatting would get wrong.
                    arrival_ms: std::f64::consts::PI,
                    deadline_ms: f64::INFINITY,
                    cost_multiplier: 8.0,
                    source: None,
                    enqueued_step: 2,
                },
            ],
            steps: vec![1.5, 3.0000000000000004, f64::INFINITY],
            decisions: vec![
                TraceDecision::Served { planned: 224, served: 112, int8: true },
                TraceDecision::Failed,
            ],
            hard_cancelled: false,
        }
    }

    #[test]
    fn save_load_round_trips_bitwise() {
        let trace = sample_trace();
        let dir = std::env::temp_dir().join("rescnn-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round_trip.trace");
        trace.save(&path).unwrap();
        let loaded = ServingTrace::load(&path).unwrap();
        assert_eq!(trace, loaded, "text round trip must be bit-exact, infinities included");
        assert_eq!(loaded.steps[1].to_bits(), trace.steps[1].to_bits());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn malformed_traces_are_rejected() {
        assert!(ServingTrace::parse("").is_err(), "empty file");
        assert!(ServingTrace::parse("not-a-trace").is_err(), "bad header");
        assert!(
            ServingTrace::parse("rescnn-serving-trace v1\nbogus 1").is_err(),
            "unknown line tag"
        );
        assert!(
            ServingTrace::parse("rescnn-serving-trace v1\nreq zz 0 0 - 0").is_err(),
            "bad bits field"
        );
        let ok = ServingTrace::parse("rescnn-serving-trace v1\nhard_cancelled 1\n").unwrap();
        assert!(ok.hard_cancelled && ok.is_empty() && !ok.replayable());
    }

    #[test]
    fn decision_classification() {
        let rejected = SloOutcome::Rejected(Rejected::Overloaded);
        assert_eq!(TraceDecision::from_outcome(&rejected, false), TraceDecision::Shed);
        let expired = SloOutcome::Rejected(Rejected::DeadlineExceeded);
        assert_eq!(TraceDecision::from_outcome(&expired, false), TraceDecision::Expired);
        let gated = SloOutcome::Rejected(Rejected::CircuitOpen);
        assert_eq!(TraceDecision::from_outcome(&gated, false), TraceDecision::BreakerShed);
        let failed = SloOutcome::Failed(CoreError::EmptyDataset);
        assert_eq!(TraceDecision::from_outcome(&failed, true), TraceDecision::Failed);
    }
}
