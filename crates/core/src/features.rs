//! Feature extraction for the scale model.
//!
//! The scale model sees only a low-resolution preview (112 × 112 in the paper) and must
//! predict which backbone resolutions will classify the image correctly. The dominant
//! signal is the apparent size of the object and how much fine detail it carries, so the
//! features are: luma statistics, multi-scale edge energy, an object-extent estimate from
//! the gradient field, centre/border contrast, and a coarse frequency-band split.

use rescnn_imaging::{resize_square, Filter, Image};

use crate::error::Result;

/// Number of features produced by [`extract_features`].
pub const FEATURE_COUNT: usize = 12;

/// Mean and standard deviation of a slice.
fn mean_std(values: &[f32]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mean = values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64;
    let var = values
        .iter()
        .map(|&v| {
            let d = v as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / values.len() as f64;
    (mean, var.sqrt())
}

/// Mean gradient magnitude of a luma plane.
fn edge_energy(luma: &[f32], width: usize, height: usize) -> f64 {
    if width < 2 || height < 2 {
        return 0.0;
    }
    let mut total = 0.0f64;
    for y in 0..height - 1 {
        for x in 0..width - 1 {
            let v = luma[y * width + x];
            let dx = luma[y * width + x + 1] - v;
            let dy = luma[(y + 1) * width + x] - v;
            total += ((dx * dx + dy * dy) as f64).sqrt();
        }
    }
    total / ((width - 1) * (height - 1)) as f64
}

/// Estimates how much of the frame the foreground object occupies by measuring how many
/// pixels differ markedly from the colour of the image border (the background). Returns
/// `(area_fraction, linear_fraction)`.
fn object_extent(preview: &Image) -> (f64, f64) {
    let (w, h) = preview.dimensions();
    let margin_x = (w / 10).max(1);
    let margin_y = (h / 10).max(1);
    // Mean colour of the border frame.
    let mut border_sum = [0.0f64; 3];
    let mut border_count = 0usize;
    for y in 0..h {
        for x in 0..w {
            if x < margin_x || x >= w - margin_x || y < margin_y || y >= h - margin_y {
                let p = preview.pixel(x, y);
                for (s, &v) in border_sum.iter_mut().zip(&p) {
                    *s += v as f64;
                }
                border_count += 1;
            }
        }
    }
    if border_count == 0 {
        return (0.0, 0.0);
    }
    let border_mean = [
        border_sum[0] / border_count as f64,
        border_sum[1] / border_count as f64,
        border_sum[2] / border_count as f64,
    ];
    // Count interior pixels that differ strongly from the background colour.
    let mut object_pixels = 0usize;
    for y in 0..h {
        for x in 0..w {
            let p = preview.pixel(x, y);
            let dist: f64 = p
                .iter()
                .zip(&border_mean)
                .map(|(&v, &m)| (v as f64 - m) * (v as f64 - m))
                .sum::<f64>()
                .sqrt();
            if dist > 0.25 {
                object_pixels += 1;
            }
        }
    }
    let area_fraction = object_pixels as f64 / (w * h) as f64;
    (area_fraction, area_fraction.sqrt())
}

/// Extracts the [`FEATURE_COUNT`]-dimensional feature vector from a preview image.
///
/// # Errors
/// Returns an error if the internal downsampling fails (cannot happen for non-empty
/// images).
pub fn extract_features(preview: &Image) -> Result<Vec<f64>> {
    let (w, h) = preview.dimensions();
    let luma = preview.to_luma();
    let (mean, std) = mean_std(&luma);

    // Multi-scale edge energy: full, half, quarter resolution.
    let edge_full = edge_energy(&luma, w, h);
    let half = resize_square(preview, (w.min(h) / 2).max(2), Filter::Bilinear)?;
    let quarter = resize_square(preview, (w.min(h) / 4).max(2), Filter::Bilinear)?;
    let edge_half = edge_energy(&half.to_luma(), half.width(), half.height());
    let edge_quarter = edge_energy(&quarter.to_luma(), quarter.width(), quarter.height());

    // Detail ratio: how much edge energy survives downsampling. High values mean the
    // image's structure is coarse (big objects); low values mean fine detail dominates.
    let detail_ratio_half = if edge_full > 1e-9 { edge_half / edge_full } else { 1.0 };
    let detail_ratio_quarter = if edge_full > 1e-9 { edge_quarter / edge_full } else { 1.0 };

    // Object extent from colour contrast against the background.
    let (extent_area, extent_linear) = object_extent(preview);

    // Centre vs. border statistics (objects are roughly centred in both datasets).
    let centre_box = |frac: f64| -> Vec<f32> {
        let bw = ((w as f64 * frac) as usize).max(1);
        let bh = ((h as f64 * frac) as usize).max(1);
        let x0 = (w - bw) / 2;
        let y0 = (h - bh) / 2;
        let mut out = Vec::with_capacity(bw * bh);
        for y in y0..y0 + bh {
            for x in x0..x0 + bw {
                out.push(luma[y * w + x]);
            }
        }
        out
    };
    let (centre_mean, centre_std) = mean_std(&centre_box(0.4));
    let border_contrast = (centre_mean - mean).abs();

    Ok(vec![
        mean,
        std,
        edge_full,
        edge_half,
        edge_quarter,
        detail_ratio_half,
        detail_ratio_quarter,
        extent_area,
        extent_linear,
        centre_mean,
        centre_std,
        border_contrast,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescnn_imaging::{render_scene, SceneSpec};

    fn preview(scale: f64, detail: f64) -> Image {
        let img = render_scene(
            &SceneSpec::new(160, 160, 7).with_object_scale(scale).with_detail(detail).with_seed(3),
        )
        .unwrap();
        resize_square(&img, 112, Filter::Bilinear).unwrap()
    }

    #[test]
    fn feature_vector_has_fixed_length_and_is_finite() {
        let f = extract_features(&preview(0.5, 0.5)).unwrap();
        assert_eq!(f.len(), FEATURE_COUNT);
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn object_extent_tracks_object_scale() {
        let small = extract_features(&preview(0.15, 0.5)).unwrap();
        let large = extract_features(&preview(0.85, 0.5)).unwrap();
        // Features 7 and 8 are the row/column extents.
        let small_extent = small[7] + small[8];
        let large_extent = large[7] + large[8];
        assert!(
            large_extent > small_extent,
            "extent features must grow with object scale: {small_extent} vs {large_extent}"
        );
    }

    #[test]
    fn detail_ratio_tracks_texture_detail() {
        let flat = extract_features(&preview(0.6, 0.05)).unwrap();
        let fine = extract_features(&preview(0.6, 0.95)).unwrap();
        // Feature 6 is the quarter-scale detail ratio: fine textures lose more energy.
        assert!(fine[6] < flat[6] + 1e-9, "fine {} vs flat {}", fine[6], flat[6]);
    }

    #[test]
    fn features_are_deterministic() {
        let a = extract_features(&preview(0.4, 0.4)).unwrap();
        let b = extract_features(&preview(0.4, 0.4)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn constant_image_has_zero_edges() {
        let img = Image::filled(64, 64, [0.5; 3]).unwrap();
        let f = extract_features(&img).unwrap();
        assert!(f[2].abs() < 1e-9);
        assert!(f[1].abs() < 1e-6);
    }
}
