//! Integration contract of the SLO-aware serving core: per-request fault
//! isolation (corrupt streams, contained panics), degrade-before-shed
//! admission, and bitwise determinism of every virtual-clock decision across
//! thread budgets.

use rescnn_core::{
    BatchOptions, CircuitBreakerPolicy, CoreError, DynamicResolutionPipeline, PipelineConfig,
    PrecisionGate, Rejected, ResolutionLatencyModel, RetryPolicy, ScaleModelConfig,
    ScaleModelTrainer, SloOptions, SloOutcome, SloReport, SloRequest, SloScheduler, SourceId,
    WatchdogPolicy,
};
use rescnn_data::{DatasetKind, DatasetSpec, Sample};
use rescnn_imaging::CropRatio;
use rescnn_models::ModelKind;
use rescnn_oracle::AccuracyOracle;

fn build_pipeline(resolutions: Vec<usize>) -> DynamicResolutionPipeline {
    let config =
        ScaleModelConfig { resolutions: resolutions.clone(), epochs: 30, ..Default::default() };
    let trainer = ScaleModelTrainer::new(config, ModelKind::ResNet18, DatasetKind::CarsLike);
    let train = DatasetSpec::cars_like().with_len(60).with_max_dimension(96).build(1);
    let scale_model = trainer.train(&train, 3).unwrap();
    let pipeline_config = PipelineConfig::new(ModelKind::ResNet18, DatasetKind::CarsLike)
        .with_crop(CropRatio::new(0.56).unwrap())
        .with_resolutions(resolutions);
    DynamicResolutionPipeline::new(pipeline_config, scale_model, AccuracyOracle::new(77)).unwrap()
}

/// A latency model with fixed, host-independent estimates, so admission
/// decisions in these tests never depend on the machine.
fn fixed_latency() -> ResolutionLatencyModel {
    ResolutionLatencyModel::from_estimates([(112, 10.0), (224, 50.0)])
}

/// Zeroes the only wall-clock-dependent field so reports can be compared
/// exactly.
fn normalized(mut report: SloReport) -> SloReport {
    report.wall_seconds = 0.0;
    report
}

/// Finds a sample the pipeline plans at the top of the ladder, so degradation
/// has somewhere to go.
fn sample_planned_at<'d>(
    pipeline: &DynamicResolutionPipeline,
    data: &'d rescnn_data::Dataset,
    resolution: usize,
) -> &'d Sample {
    data.iter()
        .find(|sample| pipeline.plan(sample).unwrap().chosen_resolution == resolution)
        .expect("dataset must contain a sample planned at the requested resolution")
}

#[test]
fn corrupt_streams_fault_only_their_own_requests() {
    let pipeline = build_pipeline(vec![112, 224]);
    let data = DatasetSpec::cars_like().with_len(20).with_max_dimension(72).build(41);
    let quality = pipeline.config().encode_quality;
    // 5% corruption: request 7 carries a truncated stream.
    let corrupt_index = 7usize;

    let options = SloOptions::default().with_latency_model(fixed_latency());
    let mut scheduler = SloScheduler::new(&pipeline, options);
    for (i, sample) in data.iter().enumerate() {
        let arrival = i as f64 * 60.0; // no backlog: isolation, not overload
        let mut request = SloRequest::new(sample, arrival, arrival + 500.0);
        if i == corrupt_index {
            let stream = sample.encode_progressive(quality).unwrap().with_truncated_scan(0, 2);
            request = request.with_storage(stream);
        }
        scheduler.submit(request);
    }
    let report = scheduler.run().unwrap();

    assert_eq!(report.total, data.len());
    assert_eq!(report.faulted, 1);
    assert_eq!(report.completed, data.len() - 1);
    assert_eq!(report.shed, 0);
    assert_eq!(report.expired, 0);
    assert!((report.goodput - (data.len() - 1) as f64 / data.len() as f64).abs() < 1e-12);
    match &report.outcomes[corrupt_index] {
        SloOutcome::Failed(CoreError::Codec(_)) => {}
        other => panic!("corrupt stream must fault with a codec error, got {other:?}"),
    }
    for (i, outcome) in report.outcomes.iter().enumerate() {
        if i != corrupt_index {
            assert!(matches!(outcome, SloOutcome::Completed(_)), "request {i}: {outcome:?}");
        }
    }
    assert!(report.mean_delivered_ssim > 0.0);
}

#[test]
fn chaos_panics_are_contained_and_survivors_match_the_clean_run() {
    let pipeline = build_pipeline(vec![112, 224]);
    let data = DatasetSpec::cars_like().with_len(9).with_max_dimension(72).build(13);
    fn submit_all<'a>(scheduler: &mut SloScheduler<'a>, data: &'a rescnn_data::Dataset) {
        for (i, sample) in data.iter().enumerate() {
            let arrival = i as f64 * 60.0;
            scheduler.submit(SloRequest::new(sample, arrival, arrival + 500.0));
        }
    }

    let clean_options = SloOptions::default().with_latency_model(fixed_latency());
    let mut clean = SloScheduler::new(&pipeline, clean_options.clone());
    submit_all(&mut clean, &data);
    let clean = clean.run().unwrap();
    assert_eq!(clean.completed, data.len());

    // Every 3rd request's execute stage panics: submission indices 2, 5, 8.
    let mut chaotic = SloScheduler::new(&pipeline, clean_options.with_chaos_panic_every(3));
    submit_all(&mut chaotic, &data);
    let chaotic = chaotic.run().unwrap();

    assert_eq!(chaotic.faulted, 3);
    assert_eq!(chaotic.completed, data.len() - 3);
    for (i, outcome) in chaotic.outcomes.iter().enumerate() {
        if (i + 1) % 3 == 0 {
            match outcome {
                SloOutcome::Failed(CoreError::Panicked { message }) => {
                    assert!(message.contains("chaos"), "panic payload surfaced: {message}");
                }
                other => panic!("request {i} must fault with a contained panic, got {other:?}"),
            }
        } else {
            // Survivors are bitwise identical to the clean run: the panic
            // never perturbed their batch, plans, or records.
            assert_eq!(
                chaotic.outcomes[i], clean.outcomes[i],
                "survivor {i} diverged from the clean run"
            );
            assert!(matches!(outcome, SloOutcome::Completed(_)));
        }
    }
}

#[test]
fn overload_degrades_down_the_ladder_before_shedding() {
    let pipeline = build_pipeline(vec![112, 224]);
    let data = DatasetSpec::cars_like().with_len(24).with_max_dimension(72).build(29);
    let sample = sample_planned_at(&pipeline, &data, 224);

    // Six identical requests, all arriving at t=0, deadline 115 ms, with
    // service estimates 224² → 50 ms, 112² → 10 ms:
    //   r0: start   0, 224² fits (50 ≤ 115)              → completed at 224²
    //   r1: start  50, 224² fits (100 ≤ 115)             → completed at 224²
    //   r2: start 100, 224² misses, 112² fits (110 ≤ 115) → degraded to 112²
    //   r3: start 110, even 112² misses (120 > 115)       → shed (Overloaded)
    //   r4, r5: same as r3                                → shed
    let options = SloOptions::default().with_latency_model(fixed_latency());
    let mut scheduler = SloScheduler::new(&pipeline, options);
    for _ in 0..6 {
        scheduler.submit(SloRequest::new(sample, 0.0, 115.0));
    }
    let report = scheduler.run().unwrap();

    assert_eq!(report.completed, 3);
    assert_eq!(report.degraded, 1);
    assert_eq!(report.shed, 3);
    assert_eq!(report.expired, 0);
    assert_eq!(report.faulted, 0);
    match &report.outcomes[2] {
        SloOutcome::Completed(done) => {
            assert_eq!(done.planned_resolution, 224);
            assert_eq!(done.served_resolution, 112, "r2 must degrade, not shed");
            assert_eq!(done.virtual_start_ms, 100.0);
            assert_eq!(done.virtual_finish_ms, 110.0);
        }
        other => panic!("r2 must complete degraded, got {other:?}"),
    }
    for i in 3..6 {
        assert_eq!(report.outcomes[i], SloOutcome::Rejected(Rejected::Overloaded));
    }
    assert!(report.peak_backlog_ms >= 100.0);
    assert!((report.slo_violation_rate - 0.5).abs() < 1e-12);

    // An unreachable SSIM floor forbids degradation: r2 is shed instead.
    let floored = SloOptions::default().with_latency_model(fixed_latency()).with_ssim_floor(1.01);
    let mut scheduler = SloScheduler::new(&pipeline, floored);
    for _ in 0..6 {
        scheduler.submit(SloRequest::new(sample, 0.0, 115.0));
    }
    let floored = scheduler.run().unwrap();
    assert_eq!(floored.completed, 2);
    assert_eq!(floored.degraded, 0);
    assert_eq!(floored.shed, 4, "with no acceptable degradation, r2 joins the shed set");

    // With slack to spare, nothing degrades and nothing is shed.
    let relaxed = SloOptions::default().with_latency_model(fixed_latency());
    let mut scheduler = SloScheduler::new(&pipeline, relaxed);
    for _ in 0..6 {
        scheduler.submit(SloRequest::new(sample, 0.0, 10_000.0));
    }
    let relaxed = scheduler.run().unwrap();
    assert_eq!(relaxed.completed, 6);
    assert_eq!(relaxed.degraded, 0);
    assert_eq!(relaxed.shed, 0);
}

#[test]
fn queue_expiry_and_latency_spikes_follow_the_virtual_clock() {
    let pipeline = build_pipeline(vec![112, 224]);
    let data = DatasetSpec::cars_like().with_len(8).with_max_dimension(72).build(3);
    let sample = sample_planned_at(&pipeline, &data, 224);

    let options = SloOptions::default().with_latency_model(fixed_latency());
    let mut scheduler = SloScheduler::new(&pipeline, options);
    // r0 hogs the server for 10× its estimate (a latency spike); r1's deadline
    // passes while it waits in the queue.
    scheduler.submit(SloRequest::new(sample, 0.0, 1_000.0).with_cost_multiplier(10.0));
    scheduler.submit(SloRequest::new(sample, 0.0, 400.0));
    scheduler.submit(SloRequest::new(sample, 0.0, 1_000.0));
    let report = scheduler.run().unwrap();

    assert_eq!(report.outcomes[1], SloOutcome::Rejected(Rejected::DeadlineExceeded));
    assert_eq!(report.expired, 1);
    assert_eq!(report.completed, 2);
    match &report.outcomes[0] {
        SloOutcome::Completed(done) => assert_eq!(done.virtual_finish_ms, 500.0),
        other => panic!("spiked request still completes, got {other:?}"),
    }
    match &report.outcomes[2] {
        SloOutcome::Completed(done) => {
            assert_eq!(done.virtual_start_ms, 500.0);
            assert_eq!(done.virtual_finish_ms, 550.0);
        }
        other => panic!("r2 completes after the spike, got {other:?}"),
    }
}

#[test]
fn reports_are_bitwise_deterministic_across_thread_budgets() {
    let pipeline = build_pipeline(vec![112, 224]);
    let data = DatasetSpec::cars_like().with_len(12).with_max_dimension(72).build(17);
    let quality = pipeline.config().encode_quality;

    let run_with = |threads: usize| {
        let options = SloOptions::default()
            .with_latency_model(fixed_latency())
            .with_ssim_floor(0.5)
            .with_chaos_panic_every(5)
            .with_batch(BatchOptions::default().with_max_batch(3).with_threads(threads));
        let mut scheduler = SloScheduler::new(&pipeline, options);
        for (i, sample) in data.iter().enumerate() {
            // A bursty trace: pairs arrive together, deadlines tight enough to
            // force degradations and sheds, plus one corrupt stream.
            let arrival = (i / 2) as f64 * 12.0;
            let mut request = SloRequest::new(sample, arrival, arrival + 55.0);
            if i == 4 {
                request = request.with_storage(
                    data[4].encode_progressive(quality).unwrap().with_truncated_scan(0, 1),
                );
            }
            scheduler.submit(request);
        }
        normalized(scheduler.run().unwrap())
    };

    let baseline = run_with(1);
    assert_eq!(baseline.total, data.len());
    assert!(baseline.faulted >= 1, "at least the corrupt stream faults");
    for threads in [2usize, 4] {
        let mut report = run_with(threads);
        assert_eq!(report.threads, threads);
        report.threads = baseline.threads;
        assert_eq!(report, baseline, "{threads} threads changed the SLO report");
    }
}

#[test]
fn empty_queue_is_rejected() {
    let pipeline = build_pipeline(vec![112]);
    let mut scheduler = SloScheduler::new(&pipeline, SloOptions::default());
    assert!(matches!(scheduler.run(), Err(CoreError::EmptyDataset)));
    assert_eq!(scheduler.queued(), 0);
}

#[test]
fn retry_with_demotion_converts_transient_panics_into_completions() {
    let pipeline = build_pipeline(vec![112, 224]);
    let data = DatasetSpec::cars_like().with_len(24).with_max_dimension(72).build(29);
    let sample = sample_planned_at(&pipeline, &data, 224);
    fn submit<'a>(scheduler: &mut SloScheduler<'a>, sample: &'a Sample) {
        for i in 0..4 {
            let arrival = i as f64 * 60.0;
            scheduler.submit(SloRequest::new(sample, arrival, arrival + 500.0));
        }
    }

    // Without a retry policy, the injected panic is a terminal fault.
    let base = SloOptions::default()
        .with_latency_model(fixed_latency())
        .with_chaos_panic_requests(vec![2]);
    let mut unretried = SloScheduler::new(&pipeline, base.clone());
    submit(&mut unretried, sample);
    let unretried = unretried.run().unwrap();
    assert_eq!(unretried.faulted, 1);
    assert_eq!(unretried.recovered, 0);
    assert!(matches!(unretried.outcomes[2], SloOutcome::Failed(CoreError::Panicked { .. })));

    // With retry: the panic fires on the first attempt only (it models a
    // transient fault), so the retry — demoted one rung — completes.
    let mut retried = SloScheduler::new(&pipeline, base.clone().with_retry(RetryPolicy::new(2)));
    submit(&mut retried, sample);
    let retried = retried.run().unwrap();
    assert_eq!(retried.faulted, 0, "the retry must convert the fault into a completion");
    assert_eq!(retried.completed, 4);
    assert_eq!(retried.recovered, 1);
    assert_eq!(retried.retry_attempts, 1);
    match &retried.outcomes[2] {
        SloOutcome::Completed(done) => {
            assert_eq!(done.retries, 1);
            assert_eq!(done.served_resolution, 112, "the retry demotes one rung");
            assert_eq!(done.planned_resolution, 224);
            assert!(
                done.virtual_latency_ms > 0.0,
                "latency spans the failed attempt and the backoff"
            );
        }
        other => panic!("request 2 must complete on retry, got {other:?}"),
    }
    // Every other request is untouched by the retry machinery.
    for i in [0usize, 1, 3] {
        assert_eq!(retried.outcomes[i], unretried.outcomes[i], "request {i} perturbed");
    }

    // Without demotion, the retry stays at the rung that failed.
    let mut undemoted =
        SloScheduler::new(&pipeline, base.with_retry(RetryPolicy::new(2).without_demotion()));
    submit(&mut undemoted, sample);
    let undemoted = undemoted.run().unwrap();
    match &undemoted.outcomes[2] {
        SloOutcome::Completed(done) => {
            assert_eq!(done.retries, 1);
            assert_eq!(done.served_resolution, 224);
        }
        other => panic!("request 2 must complete on retry, got {other:?}"),
    }
}

#[test]
fn circuit_breaker_sheds_a_corrupt_source_at_the_gate_and_probes_recovery() {
    let pipeline = build_pipeline(vec![112, 224]);
    let data = DatasetSpec::cars_like().with_len(12).with_max_dimension(72).build(41);
    let quality = pipeline.config().encode_quality;
    let hot = SourceId(7);
    let cold = SourceId(9);

    // Source 7 sends corrupt streams at t = 0, 10, 20, 30; threshold 2 trips
    // the breaker at t = 10 with a 100 ms cooldown, so t = 20 and t = 30 are
    // shed at the gate. Its healthy request at t = 120 is the half-open probe
    // and completes, closing the breaker. Source 9 interleaves healthy
    // requests throughout and must never be gated.
    let options = SloOptions::default()
        .with_latency_model(fixed_latency())
        .with_breaker(CircuitBreakerPolicy::new(2, 100.0));
    let mut scheduler = SloScheduler::new(&pipeline, options);
    let corrupt = |i: usize| data[i].encode_progressive(quality).unwrap().with_truncated_scan(0, 2);
    for (slot, t) in [0.0f64, 10.0, 20.0, 30.0].iter().enumerate() {
        scheduler.submit(
            SloRequest::new(&data[slot], *t, t + 5_000.0)
                .with_storage(corrupt(slot))
                .with_source(hot),
        );
    }
    let probe_index = scheduler.submit(SloRequest::new(&data[4], 120.0, 5_000.0).with_source(hot));
    for (offset, t) in [5.0f64, 15.0, 25.0].iter().enumerate() {
        scheduler.submit(SloRequest::new(&data[5 + offset], *t, t + 5_000.0).with_source(cold));
    }
    let unsourced_index = scheduler.submit(SloRequest::new(&data[8], 22.0, 5_000.0));
    let report = scheduler.run().unwrap();

    assert!(matches!(report.outcomes[0], SloOutcome::Failed(CoreError::Codec(_))));
    assert!(matches!(report.outcomes[1], SloOutcome::Failed(CoreError::Codec(_))));
    assert_eq!(report.outcomes[2], SloOutcome::Rejected(Rejected::CircuitOpen));
    assert_eq!(report.outcomes[3], SloOutcome::Rejected(Rejected::CircuitOpen));
    assert!(
        matches!(report.outcomes[probe_index], SloOutcome::Completed(_)),
        "the post-cooldown probe must be admitted and complete: {:?}",
        report.outcomes[probe_index]
    );
    for i in 5..8 {
        assert!(
            matches!(report.outcomes[i], SloOutcome::Completed(_)),
            "source 9 must never be gated by source 7's breaker: request {i}"
        );
    }
    assert!(matches!(report.outcomes[unsourced_index], SloOutcome::Completed(_)));
    assert_eq!(report.breaker_shed, 2);
    assert_eq!(report.breaker_trips, 1);
    assert_eq!(report.faulted, 2);
    assert_eq!(report.shed, 0, "breaker sheds are accounted separately from overload sheds");
    assert!((report.slo_violation_rate - 4.0 / 9.0).abs() < 1e-12);
}

#[test]
fn watchdog_cancels_overruns_cheaply_and_retry_recovers_them() {
    let pipeline = build_pipeline(vec![112, 224]);
    let data = DatasetSpec::cars_like().with_len(24).with_max_dimension(72).build(29);
    let sample = sample_planned_at(&pipeline, &data, 224);

    // r0 would hog the virtual server for 10× its 50 ms estimate. The
    // watchdog (factor 2) charges it only 100 ms and cancels the execution,
    // so r1 — which expires behind the full spike in
    // `queue_expiry_and_latency_spikes_follow_the_virtual_clock` — now meets
    // its deadline.
    let watchdogged = SloOptions::default()
        .with_latency_model(fixed_latency())
        .with_watchdog(WatchdogPolicy::new(2.0));
    let mut scheduler = SloScheduler::new(&pipeline, watchdogged.clone());
    scheduler.submit(SloRequest::new(sample, 0.0, 1_000.0).with_cost_multiplier(10.0));
    scheduler.submit(SloRequest::new(sample, 0.0, 400.0));
    let report = scheduler.run().unwrap();

    assert_eq!(report.watchdog_cancelled, 1);
    match &report.outcomes[0] {
        SloOutcome::Failed(CoreError::Cancelled { reason }) => {
            assert!(reason.contains("watchdog"), "reason names the policy: {reason}");
        }
        other => panic!("the overrun must be cancelled, got {other:?}"),
    }
    match &report.outcomes[1] {
        SloOutcome::Completed(done) => {
            assert_eq!(done.virtual_start_ms, 100.0, "r1 queues behind the cap, not the spike");
            assert_eq!(done.virtual_finish_ms, 150.0);
        }
        other => panic!("r1 must complete behind the capped overrun, got {other:?}"),
    }

    // With retry, the cancelled request re-admits at nominal cost (the spike
    // models a transient) one rung down, and completes.
    let mut scheduler = SloScheduler::new(&pipeline, watchdogged.with_retry(RetryPolicy::new(1)));
    scheduler.submit(SloRequest::new(sample, 0.0, 1_000.0).with_cost_multiplier(10.0));
    scheduler.submit(SloRequest::new(sample, 0.0, 400.0));
    let recovered = scheduler.run().unwrap();
    assert_eq!(recovered.watchdog_cancelled, 1);
    assert_eq!(recovered.recovered, 1);
    match &recovered.outcomes[0] {
        SloOutcome::Completed(done) => {
            assert_eq!(done.retries, 1);
            assert_eq!(done.served_resolution, 112);
            assert_eq!(done.virtual_start_ms, 150.0, "the retry queues behind r1");
        }
        other => panic!("the cancelled request must recover on retry, got {other:?}"),
    }
}

#[test]
fn memory_budget_demotes_down_the_ladder_instead_of_overcommitting() {
    let pipeline = build_pipeline(vec![112, 224]);
    let data = DatasetSpec::cars_like().with_len(24).with_max_dimension(72).build(29);
    let sample = sample_planned_at(&pipeline, &data, 224);
    let peak_224 = pipeline.arena_peak_bytes(224).unwrap();
    let peak_112 = pipeline.arena_peak_bytes(112).unwrap();
    assert!(peak_112 < peak_224, "the ladder's arena peaks must be ordered");

    fn submit<'a>(scheduler: &mut SloScheduler<'a>, sample: &'a Sample) {
        for i in 0..4 {
            let arrival = i as f64 * 60.0;
            scheduler.submit(SloRequest::new(sample, arrival, arrival + 500.0));
        }
    }
    // A budget below the 224² plan demotes every request to 112² — nothing is
    // shed, nothing overcommits.
    let squeezed = SloOptions::default()
        .with_latency_model(fixed_latency())
        .with_memory_budget_bytes(peak_224 - 1);
    let mut scheduler = SloScheduler::new(&pipeline, squeezed);
    submit(&mut scheduler, sample);
    let squeezed = scheduler.run().unwrap();
    assert_eq!(squeezed.completed, 4);
    assert_eq!(squeezed.shed, 0);
    assert_eq!(squeezed.memory_demoted, 4);
    for outcome in &squeezed.outcomes {
        match outcome {
            SloOutcome::Completed(done) => {
                assert_eq!(done.served_resolution, 112);
                assert!(
                    pipeline.arena_peak_bytes(done.served_resolution).unwrap() < peak_224,
                    "served rungs must fit the budget"
                );
            }
            other => panic!("budget squeeze must demote, not reject: {other:?}"),
        }
    }

    // A budget below even the cheapest rung sheds — it never overcommits and
    // never panics.
    let starved = SloOptions::default()
        .with_latency_model(fixed_latency())
        .with_memory_budget_bytes(peak_112 - 1);
    let mut scheduler = SloScheduler::new(&pipeline, starved);
    submit(&mut scheduler, sample);
    let starved = scheduler.run().unwrap();
    assert_eq!(starved.completed, 0);
    assert_eq!(starved.shed, 4, "an unmeetable budget sheds instead of overcommitting");

    // An unconstrained budget is bitwise identical to no budget at all.
    let run_with = |options: SloOptions| {
        let mut scheduler = SloScheduler::new(&pipeline, options);
        submit(&mut scheduler, sample);
        normalized(scheduler.run().unwrap())
    };
    let unbudgeted = run_with(SloOptions::default().with_latency_model(fixed_latency()));
    let unconstrained = run_with(
        SloOptions::default()
            .with_latency_model(fixed_latency())
            .with_memory_budget_bytes(usize::MAX),
    );
    assert_eq!(unconstrained, unbudgeted, "a non-binding budget must not change anything");
    assert_eq!(unbudgeted.memory_demoted, 0);
}

#[test]
fn resilient_reports_are_bitwise_deterministic_across_thread_budgets() {
    let pipeline = build_pipeline(vec![112, 224]);
    let data = DatasetSpec::cars_like().with_len(16).with_max_dimension(72).build(17);
    let quality = pipeline.config().encode_quality;
    let peak_224 = pipeline.arena_peak_bytes(224).unwrap();

    // Every lifecycle policy on at once, over a trace mixing corruption,
    // latency spikes, a hot source, and chaos panics.
    let run_with = |threads: usize| {
        let options = SloOptions::default()
            .with_latency_model(fixed_latency())
            .with_ssim_floor(0.5)
            .with_retry(RetryPolicy::new(2).with_backoff_ms(2.0))
            .with_breaker(CircuitBreakerPolicy::new(2, 80.0))
            .with_watchdog(WatchdogPolicy::new(3.0))
            .with_memory_budget_bytes(peak_224 - 1)
            .with_chaos_panic_every(7)
            .with_chaos_panic_requests(vec![3])
            .with_batch(BatchOptions::default().with_max_batch(3).with_threads(threads));
        let mut scheduler = SloScheduler::new(&pipeline, options);
        for (i, sample) in data.iter().enumerate() {
            let arrival = (i / 2) as f64 * 12.0;
            let mut request = SloRequest::new(sample, arrival, arrival + 200.0)
                .with_source(SourceId((i % 3) as u64));
            if i % 5 == 4 {
                request = request.with_storage(
                    sample.encode_progressive(quality).unwrap().with_truncated_scan(0, 1),
                );
            }
            if i == 6 {
                request = request.with_cost_multiplier(8.0);
            }
            scheduler.submit(request);
        }
        normalized(scheduler.run().unwrap())
    };

    let baseline = run_with(1);
    assert_eq!(baseline.total, data.len());
    // The trace must actually exercise the machinery being pinned.
    assert!(baseline.retry_attempts > 0, "no retries fired");
    assert!(baseline.watchdog_cancelled > 0, "the watchdog never fired");
    assert!(baseline.memory_demoted > 0 || baseline.completed == 0, "the budget never bound");
    // Same seed, same report — rerun determinism.
    let rerun = run_with(1);
    assert_eq!(rerun, baseline, "a same-seed rerun changed the report");
    for threads in [2usize, 4] {
        let mut report = run_with(threads);
        assert_eq!(report.threads, threads);
        report.threads = baseline.threads;
        assert_eq!(report, baseline, "{threads} threads changed the resilient SLO report");
    }
}

#[test]
fn precision_demotion_serves_the_planned_rung_quantized_before_degrading() {
    let pipeline = build_pipeline(vec![112, 224]);
    let data = DatasetSpec::cars_like().with_len(24).with_max_dimension(72).build(29);
    let sample = sample_planned_at(&pipeline, &data, 224);

    // Same overload trace as `overload_degrades_down_the_ladder_before_shedding`
    // (six requests at t=0, deadline 115 ms, f32 estimates 224² → 50 ms,
    // 112² → 10 ms), but now the int8 gate admits 224² and the quantized
    // forward is modeled at 10 ms:
    //   r0: start   0, f32 224² fits (50 ≤ 115)                 → f32 at 224²
    //   r1: start  50, f32 224² fits (100 ≤ 115)                → f32 at 224²
    //   r2: start 100, f32 misses, int8 224² fits (110 ≤ 115)   → int8 at 224²
    //   r3: start 110, f32 and int8 miss at both rungs (112² is
    //       not gate-admitted, f32 112² gives 120 > 115)         → shed
    //   r4, r5: same as r3                                       → shed
    let int8_latency = ResolutionLatencyModel::from_estimates([(112, 5.0), (224, 10.0)]);
    let options = SloOptions::default()
        .with_latency_model(fixed_latency())
        .with_precision_demotion(PrecisionGate::from_admitted([224]), int8_latency);
    let mut scheduler = SloScheduler::new(&pipeline, options);
    for _ in 0..6 {
        scheduler.submit(SloRequest::new(sample, 0.0, 115.0));
    }
    let report = scheduler.run().unwrap();

    assert_eq!(report.completed, 3);
    assert_eq!(report.precision_demoted, 1, "r2 must be served quantized");
    assert_eq!(report.degraded, 0, "demotion keeps the planned rung; nothing steps down");
    assert_eq!(report.shed, 3);
    match &report.outcomes[2] {
        SloOutcome::Completed(done) => {
            assert_eq!(done.planned_resolution, 224);
            assert_eq!(done.served_resolution, 224, "r2 keeps its rung at reduced precision");
            assert_eq!(done.virtual_start_ms, 100.0);
            assert_eq!(done.virtual_finish_ms, 110.0);
        }
        other => panic!("r2 must complete at its planned rung, got {other:?}"),
    }

    // The same trace without the option degrades r2 down the ladder instead:
    // precision demotion converted a resolution drop into a same-rung serve.
    let baseline_options = SloOptions::default().with_latency_model(fixed_latency());
    let mut scheduler = SloScheduler::new(&pipeline, baseline_options);
    for _ in 0..6 {
        scheduler.submit(SloRequest::new(sample, 0.0, 115.0));
    }
    let baseline = scheduler.run().unwrap();
    assert_eq!(baseline.precision_demoted, 0);
    assert_eq!(baseline.degraded, 1);

    // A gate that admits nothing must be indistinguishable from no option at
    // all — bit for bit, not just in the counters.
    let denied_options = SloOptions::default()
        .with_latency_model(fixed_latency())
        .with_precision_demotion(PrecisionGate::deny_all(), fixed_latency());
    let mut scheduler = SloScheduler::new(&pipeline, denied_options);
    for _ in 0..6 {
        scheduler.submit(SloRequest::new(sample, 0.0, 115.0));
    }
    let denied = scheduler.run().unwrap();
    assert_eq!(normalized(denied), normalized(baseline), "a deny-all gate changed the report");
}
