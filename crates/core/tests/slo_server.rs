//! Integration tests for the async real-clock serving front-end: lifecycle
//! probes, graceful drain (including via `Drop`), wall-clock deadline
//! enforcement, and the record/replay determinism contract.

use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use rescnn_core::{
    DynamicResolutionPipeline, PipelineConfig, Rejected, ResolutionLatencyModel, ScaleModelConfig,
    ScaleModelTrainer, ServerConfig, ServerRequest, ServerState, SloOptions, SloOutcome,
    SloRequest, SloScheduler, SloServer,
};
use rescnn_data::{Dataset, DatasetKind, DatasetSpec};
use rescnn_imaging::CropRatio;
use rescnn_models::ModelKind;
use rescnn_oracle::AccuracyOracle;

const LADDER: [usize; 2] = [112, 224];

/// Server tests exercise real threads, the shared engine pool, and pool
/// drains; serialize them so one test's shutdown never supersedes another's.
fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn pipeline() -> Arc<DynamicResolutionPipeline> {
    Arc::clone(pipeline_ref())
}

fn pipeline_ref() -> &'static Arc<DynamicResolutionPipeline> {
    static PIPELINE: OnceLock<Arc<DynamicResolutionPipeline>> = OnceLock::new();
    PIPELINE.get_or_init(|| {
        let resolutions = LADDER.to_vec();
        let config =
            ScaleModelConfig { resolutions: resolutions.clone(), epochs: 30, ..Default::default() };
        let trainer = ScaleModelTrainer::new(config, ModelKind::ResNet18, DatasetKind::CarsLike);
        let train = DatasetSpec::cars_like().with_len(60).with_max_dimension(96).build(1);
        let scale_model = trainer.train(&train, 3).unwrap();
        let pipeline_config = PipelineConfig::new(ModelKind::ResNet18, DatasetKind::CarsLike)
            .with_crop(CropRatio::new(0.56).unwrap())
            .with_resolutions(resolutions);
        Arc::new(
            DynamicResolutionPipeline::new(pipeline_config, scale_model, AccuracyOracle::new(77))
                .unwrap(),
        )
    })
}

fn data() -> &'static Dataset {
    static DATA: OnceLock<Dataset> = OnceLock::new();
    DATA.get_or_init(|| DatasetSpec::cars_like().with_len(12).with_max_dimension(72).build(9))
}

fn fixed_latency() -> ResolutionLatencyModel {
    ResolutionLatencyModel::from_estimates([(112, 10.0), (224, 50.0)])
}

fn options() -> SloOptions {
    SloOptions::default().with_latency_model(fixed_latency()).with_ssim_floor(0.30)
}

#[test]
fn lifecycle_probes_and_graceful_join() {
    let _guard = test_lock();
    let server =
        SloServer::start(pipeline(), ServerConfig::default().with_options(options())).unwrap();
    // Starting → Ready happens on the worker; wait briefly for readiness.
    let deadline = Instant::now() + Duration::from_secs(5);
    while !server.is_ready() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(server.is_ready(), "event loop never became ready");
    assert!(server.is_healthy());
    assert_eq!(server.state(), ServerState::Ready);

    let sample = Arc::new(data()[0].clone());
    let ticket = server.submit(ServerRequest::new(sample, 60_000.0)).unwrap();
    assert_eq!(ticket.0, 0);

    assert!(server.drain(), "first drain call must initiate the drain");
    assert!(!server.drain(), "second drain call must be a no-op");
    let report = server.join().unwrap();
    assert_eq!(report.submitted, 1);
    assert!(report.drained_gracefully, "one in-flight request must drain gracefully");
    assert_eq!(report.hard_cancelled, 0);
    assert!(
        matches!(report.slo.outcomes[0], SloOutcome::Completed(_)),
        "the accepted request must complete, got {:?}",
        report.slo.outcomes[0]
    );
}

#[test]
fn drop_drains_gracefully_and_abandons_no_pool_jobs() {
    let _guard = test_lock();
    let requests = 4usize;
    let mut server =
        SloServer::start(pipeline(), ServerConfig::default().with_options(options())).unwrap();
    let stream = server.completions().expect("stream is available once");
    for i in 0..requests {
        let sample = Arc::new(data()[i % data().len()].clone());
        server.submit(ServerRequest::new(sample, 60_000.0)).unwrap();
    }
    // Drop with work in flight: the contract is a graceful drain bounded by
    // the drain deadline, not an abort.
    drop(server);
    let completions: Vec<_> = stream.collect();
    assert_eq!(completions.len(), requests, "every accepted ticket yields one completion");
    for completion in &completions {
        assert!(
            matches!(completion.outcome, SloOutcome::Completed(_)),
            "in-flight work must complete on drop, got {:?}",
            completion.outcome
        );
    }
    // The engine pool saw the whole drain: nothing was abandoned mid-job.
    let drain = rescnn_tensor::shutdown_pool();
    assert_eq!(drain.abandoned, 0, "graceful server drain must abandon no pool jobs: {drain:?}");
}

#[test]
fn wall_clock_deadline_expires_stalled_requests() {
    let _guard = test_lock();
    // Completion capacity 1 and an unconsumed stream wedge the event loop on
    // delivery, so the third request sits in the inbox until its wall
    // deadline has passed; its virtual admission (arrival < deadline, empty
    // virtual server) would have served it.
    let config = ServerConfig::default()
        .with_options(options())
        .with_completion_capacity(1)
        .with_idle_tick_ms(1.0)
        .with_drain_deadline_ms(20_000.0);
    let mut server = SloServer::start(pipeline(), config).unwrap();
    let stream = server.completions().unwrap();
    let sample = || Arc::new(data()[0].clone());
    // Two immediately-expiring requests: the first's completion fills the
    // queue, the second's delivery blocks the loop.
    server.submit(ServerRequest::new(sample(), 0.0)).unwrap();
    server.submit(ServerRequest::new(sample(), 0.0)).unwrap();
    let wedged_by = Instant::now() + Duration::from_secs(10);
    while server.in_flight() != 1 && Instant::now() < wedged_by {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(server.in_flight(), 1, "event loop never wedged on the full completion queue");
    // Submitted while wedged, with a slack that will have elapsed by the time
    // the loop resumes.
    let stalled = server.submit(ServerRequest::new(sample(), 5.0)).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let first = stream.recv().expect("first completion");
    assert!(matches!(first.outcome, SloOutcome::Rejected(Rejected::DeadlineExceeded)));
    let mut outcomes = vec![first];
    server.drain();
    let report = server.join().unwrap();
    outcomes.extend(stream);
    assert_eq!(outcomes.len(), 3);
    let stalled_outcome =
        outcomes.iter().find(|c| c.ticket == stalled).expect("stalled ticket settled");
    assert!(
        matches!(stalled_outcome.outcome, SloOutcome::Rejected(Rejected::DeadlineExceeded)),
        "a request whose wall deadline passed in the inbox must expire, got {:?}",
        stalled_outcome.outcome
    );
    assert!(!stalled_outcome.deadline_met);
    assert_eq!(report.slo.expired, 3);
}

#[test]
fn recorded_trace_replays_bitwise_through_the_batch_scheduler() {
    let _guard = test_lock();
    let config = ServerConfig::default()
        .with_options(options())
        .with_record(true)
        .with_drain_deadline_ms(60_000.0);
    let mut server = SloServer::start(pipeline(), config).unwrap();
    let stream = server.completions().unwrap();
    let consumer = std::thread::spawn(move || stream.count());
    // A mix of generous, tight, and hopeless slacks so the live run serves,
    // degrades, and rejects.
    let slacks = [60_000.0, 60.0, 15.0, 0.0, 60_000.0, 25.0, 60.0, 0.0];
    let mut accepted: Vec<usize> = Vec::new();
    for (i, slack) in slacks.iter().enumerate() {
        let index = i % data().len();
        let sample = Arc::new(data()[index].clone());
        if server.submit(ServerRequest::new(sample, *slack)).is_ok() {
            accepted.push(index);
        }
        std::thread::sleep(Duration::from_millis(3));
    }
    server.drain();
    let report = server.join().unwrap();
    assert_eq!(consumer.join().unwrap(), accepted.len());
    let trace = report.trace.as_ref().expect("recording run carries its trace");
    assert!(report.drained_gracefully);
    assert!(trace.replayable(), "a graceful drain must be replayable");
    assert_eq!(trace.requests.len(), accepted.len());
    assert_eq!(trace.decisions.len(), accepted.len());

    // Round-trip through the on-disk format, then replay through the
    // virtual-clock scheduler: admission decisions must match bitwise.
    let persisted = trace.to_text();
    let reloaded = rescnn_core::ServingTrace::from_text(&persisted).unwrap();
    assert_eq!(&reloaded, trace);

    let mut scheduler = SloScheduler::new(pipeline_ref(), options());
    let samples: Vec<_> = accepted.iter().map(|&index| data()[index].clone()).collect();
    for sample in &samples {
        scheduler.submit(SloRequest::new(sample, 0.0, 1.0));
    }
    let (replayed_report, replayed_trace) = scheduler.replay(&reloaded).unwrap();
    assert_eq!(
        replayed_trace.decisions, trace.decisions,
        "replayed admission decisions must match the live run bitwise"
    );
    assert_eq!(replayed_report.completed, report.slo.completed);
    assert_eq!(replayed_report.degraded, report.slo.degraded);
    assert_eq!(replayed_report.shed, report.slo.shed);
    assert_eq!(replayed_report.expired, report.slo.expired);
}
