//! Property tests for `SloScheduler` admission invariants over seeded random
//! workloads: deadlines are never violated by a completion, the degradation
//! ladder is monotone (demote-only, never below the floor's reach), shed and
//! expired requests consume zero execute compute, and a memory budget is a
//! hard ceiling on the served rung.

use proptest::prelude::*;
use rescnn_core::{
    DynamicResolutionPipeline, PipelineConfig, ResolutionLatencyModel, ScaleModelConfig,
    ScaleModelTrainer, SloOptions, SloOutcome, SloRequest, SloScheduler,
};
use rescnn_data::{DatasetKind, DatasetSpec};
use rescnn_imaging::CropRatio;
use rescnn_models::ModelKind;
use rescnn_oracle::AccuracyOracle;
use std::sync::OnceLock;

const LADDER: [usize; 2] = [112, 224];

/// One shared pipeline: construction trains a scale model and is by far the
/// most expensive step, so every proptest case reuses it.
fn pipeline() -> &'static DynamicResolutionPipeline {
    static PIPELINE: OnceLock<DynamicResolutionPipeline> = OnceLock::new();
    PIPELINE.get_or_init(|| {
        let resolutions = LADDER.to_vec();
        let config =
            ScaleModelConfig { resolutions: resolutions.clone(), epochs: 30, ..Default::default() };
        let trainer = ScaleModelTrainer::new(config, ModelKind::ResNet18, DatasetKind::CarsLike);
        let train = DatasetSpec::cars_like().with_len(60).with_max_dimension(96).build(1);
        let scale_model = trainer.train(&train, 3).unwrap();
        let pipeline_config = PipelineConfig::new(ModelKind::ResNet18, DatasetKind::CarsLike)
            .with_crop(CropRatio::new(0.56).unwrap())
            .with_resolutions(resolutions);
        DynamicResolutionPipeline::new(pipeline_config, scale_model, AccuracyOracle::new(77))
            .unwrap()
    })
}

fn fixed_latency() -> ResolutionLatencyModel {
    ResolutionLatencyModel::from_estimates([(112, 10.0), (224, 50.0)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Over random arrival gaps and deadline slacks: outcome counters
    // partition the queue, completions finish within their deadline and
    // start no earlier than their arrival, and the ladder only ever demotes.
    #[test]
    fn admission_never_violates_deadlines_and_only_demotes(
        seed in 0u64..40,
        gap in 5.0f64..80.0,
        slack in 20.0f64..400.0,
    ) {
        let pipeline = pipeline();
        let data = DatasetSpec::cars_like().with_len(8).with_max_dimension(72).build(seed);
        let options = SloOptions::default()
            .with_latency_model(fixed_latency())
            .with_ssim_floor(0.30);
        let mut scheduler = SloScheduler::new(pipeline, options);
        let mut deadlines = Vec::new();
        for (i, sample) in data.iter().enumerate() {
            let arrival = i as f64 * gap;
            deadlines.push(arrival + slack);
            scheduler.submit(SloRequest::new(sample, arrival, arrival + slack));
        }
        let report = scheduler.run().unwrap();

        prop_assert_eq!(
            report.completed + report.shed + report.breaker_shed + report.expired
                + report.faulted,
            report.total,
            "outcome counters must partition the queue"
        );
        for (i, outcome) in report.outcomes.iter().enumerate() {
            if let SloOutcome::Completed(done) = outcome {
                let arrival = i as f64 * gap;
                prop_assert!(
                    done.virtual_finish_ms <= deadlines[i] + 1e-9,
                    "request {i} finished at {} past its deadline {}",
                    done.virtual_finish_ms,
                    deadlines[i]
                );
                prop_assert!(done.virtual_start_ms >= arrival - 1e-9);
                prop_assert!(
                    done.served_resolution <= done.planned_resolution,
                    "ladder must never promote: {} > {}",
                    done.served_resolution,
                    done.planned_resolution
                );
                prop_assert!(LADDER.contains(&done.served_resolution));
                prop_assert_eq!(done.retries, 0, "no retry policy means no retries");
            }
        }
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Shed and expired requests consume zero execute compute: with a chaos
    // plan that panics *every* execution, the rejection set is bitwise
    // identical to the clean run's — admission decisions cannot observe
    // execution at all — and nothing completes.
    #[test]
    fn rejected_requests_consume_zero_execute_compute(
        seed in 0u64..40,
        slack in 15.0f64..120.0,
    ) {
        let pipeline = pipeline();
        let data = DatasetSpec::cars_like().with_len(8).with_max_dimension(72).build(seed);
        // Simultaneous arrivals force a backlog, so some requests shed.
        let options = SloOptions::default().with_latency_model(fixed_latency());
        let mut clean = SloScheduler::new(pipeline, options.clone());
        for sample in data.iter() {
            clean.submit(SloRequest::new(sample, 0.0, slack));
        }
        let clean = clean.run().unwrap();

        let mut chaotic = SloScheduler::new(pipeline, options.with_chaos_panic_every(1));
        for sample in data.iter() {
            chaotic.submit(SloRequest::new(sample, 0.0, slack));
        }
        let chaotic = chaotic.run().unwrap();

        prop_assert_eq!(chaotic.completed, 0, "every execution panics");
        prop_assert_eq!(chaotic.faulted, clean.completed, "admitted set is unchanged");
        prop_assert_eq!(chaotic.shed, clean.shed);
        prop_assert_eq!(chaotic.expired, clean.expired);
        for (i, outcome) in clean.outcomes.iter().enumerate() {
            if let SloOutcome::Rejected(rejection) = outcome {
                prop_assert_eq!(
                    &chaotic.outcomes[i],
                    &SloOutcome::Rejected(*rejection),
                    "rejection {i} must not depend on execution results"
                );
            }
        }
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // A memory budget below the top rung's arena peak is a hard ceiling:
    // nothing is served above the largest rung that fits the budget.
    #[test]
    fn memory_budget_is_a_hard_ceiling_on_the_served_rung(seed in 0u64..20) {
        let pipeline = pipeline();
        let budget = pipeline.arena_peak_bytes(224).unwrap() - 1;
        let data = DatasetSpec::cars_like().with_len(6).with_max_dimension(72).build(seed);
        let options = SloOptions::default()
            .with_latency_model(fixed_latency())
            .with_memory_budget_bytes(budget);
        let mut scheduler = SloScheduler::new(pipeline, options);
        for (i, sample) in data.iter().enumerate() {
            let arrival = i as f64 * 60.0;
            scheduler.submit(SloRequest::new(sample, arrival, arrival + 500.0));
        }
        let report = scheduler.run().unwrap();
        for outcome in &report.outcomes {
            if let SloOutcome::Completed(done) = outcome {
                prop_assert!(
                    pipeline.arena_peak_bytes(done.served_resolution).unwrap() <= budget,
                    "served rung {} overcommits the {} byte budget",
                    done.served_resolution,
                    budget
                );
            }
        }
        prop_assert_eq!(report.shed + report.expired + report.faulted, 0);
        prop_assert_eq!(report.completed, report.total, "budget demotes, never rejects");
    }
}
