//! Property tests for `SloScheduler` admission invariants over seeded random
//! workloads: deadlines are never violated by a completion, the degradation
//! ladder is monotone (demote-only, never below the floor's reach), shed and
//! expired requests consume zero execute compute, and a memory budget is a
//! hard ceiling on the served rung.

use proptest::prelude::*;
use rescnn_core::{
    DynamicResolutionPipeline, PipelineConfig, ResolutionLatencyModel, ScaleModelConfig,
    ScaleModelTrainer, ServerConfig, ServerRequest, SloOptions, SloOutcome, SloRequest,
    SloScheduler, SloServer, SubmitError,
};
use rescnn_data::{DatasetKind, DatasetSpec};
use rescnn_imaging::CropRatio;
use rescnn_models::ModelKind;
use rescnn_oracle::AccuracyOracle;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

const LADDER: [usize; 2] = [112, 224];

/// One shared pipeline: construction trains a scale model and is by far the
/// most expensive step, so every proptest case reuses it. Returned as an
/// `Arc` so the server tests can share it with their event-loop thread; the
/// scheduler tests deref it in place.
fn pipeline() -> &'static Arc<DynamicResolutionPipeline> {
    static PIPELINE: OnceLock<Arc<DynamicResolutionPipeline>> = OnceLock::new();
    PIPELINE.get_or_init(|| {
        let resolutions = LADDER.to_vec();
        let config =
            ScaleModelConfig { resolutions: resolutions.clone(), epochs: 30, ..Default::default() };
        let trainer = ScaleModelTrainer::new(config, ModelKind::ResNet18, DatasetKind::CarsLike);
        let train = DatasetSpec::cars_like().with_len(60).with_max_dimension(96).build(1);
        let scale_model = trainer.train(&train, 3).unwrap();
        let pipeline_config = PipelineConfig::new(ModelKind::ResNet18, DatasetKind::CarsLike)
            .with_crop(CropRatio::new(0.56).unwrap())
            .with_resolutions(resolutions);
        Arc::new(
            DynamicResolutionPipeline::new(pipeline_config, scale_model, AccuracyOracle::new(77))
                .unwrap(),
        )
    })
}

fn fixed_latency() -> ResolutionLatencyModel {
    ResolutionLatencyModel::from_estimates([(112, 10.0), (224, 50.0)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Over random arrival gaps and deadline slacks: outcome counters
    // partition the queue, completions finish within their deadline and
    // start no earlier than their arrival, and the ladder only ever demotes.
    #[test]
    fn admission_never_violates_deadlines_and_only_demotes(
        seed in 0u64..40,
        gap in 5.0f64..80.0,
        slack in 20.0f64..400.0,
    ) {
        let pipeline = pipeline();
        let data = DatasetSpec::cars_like().with_len(8).with_max_dimension(72).build(seed);
        let options = SloOptions::default()
            .with_latency_model(fixed_latency())
            .with_ssim_floor(0.30);
        let mut scheduler = SloScheduler::new(pipeline, options);
        let mut deadlines = Vec::new();
        for (i, sample) in data.iter().enumerate() {
            let arrival = i as f64 * gap;
            deadlines.push(arrival + slack);
            scheduler.submit(SloRequest::new(sample, arrival, arrival + slack));
        }
        let report = scheduler.run().unwrap();

        prop_assert_eq!(
            report.completed + report.shed + report.breaker_shed + report.expired
                + report.faulted,
            report.total,
            "outcome counters must partition the queue"
        );
        for (i, outcome) in report.outcomes.iter().enumerate() {
            if let SloOutcome::Completed(done) = outcome {
                let arrival = i as f64 * gap;
                prop_assert!(
                    done.virtual_finish_ms <= deadlines[i] + 1e-9,
                    "request {i} finished at {} past its deadline {}",
                    done.virtual_finish_ms,
                    deadlines[i]
                );
                prop_assert!(done.virtual_start_ms >= arrival - 1e-9);
                prop_assert!(
                    done.served_resolution <= done.planned_resolution,
                    "ladder must never promote: {} > {}",
                    done.served_resolution,
                    done.planned_resolution
                );
                prop_assert!(LADDER.contains(&done.served_resolution));
                prop_assert_eq!(done.retries, 0, "no retry policy means no retries");
            }
        }
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Shed and expired requests consume zero execute compute: with a chaos
    // plan that panics *every* execution, the rejection set is bitwise
    // identical to the clean run's — admission decisions cannot observe
    // execution at all — and nothing completes.
    #[test]
    fn rejected_requests_consume_zero_execute_compute(
        seed in 0u64..40,
        slack in 15.0f64..120.0,
    ) {
        let pipeline = pipeline();
        let data = DatasetSpec::cars_like().with_len(8).with_max_dimension(72).build(seed);
        // Simultaneous arrivals force a backlog, so some requests shed.
        let options = SloOptions::default().with_latency_model(fixed_latency());
        let mut clean = SloScheduler::new(pipeline, options.clone());
        for sample in data.iter() {
            clean.submit(SloRequest::new(sample, 0.0, slack));
        }
        let clean = clean.run().unwrap();

        let mut chaotic = SloScheduler::new(pipeline, options.with_chaos_panic_every(1));
        for sample in data.iter() {
            chaotic.submit(SloRequest::new(sample, 0.0, slack));
        }
        let chaotic = chaotic.run().unwrap();

        prop_assert_eq!(chaotic.completed, 0, "every execution panics");
        prop_assert_eq!(chaotic.faulted, clean.completed, "admitted set is unchanged");
        prop_assert_eq!(chaotic.shed, clean.shed);
        prop_assert_eq!(chaotic.expired, clean.expired);
        for (i, outcome) in clean.outcomes.iter().enumerate() {
            if let SloOutcome::Rejected(rejection) = outcome {
                prop_assert_eq!(
                    &chaotic.outcomes[i],
                    &SloOutcome::Rejected(*rejection),
                    "rejection {i} must not depend on execution results"
                );
            }
        }
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // A memory budget below the top rung's arena peak is a hard ceiling:
    // nothing is served above the largest rung that fits the budget.
    #[test]
    fn memory_budget_is_a_hard_ceiling_on_the_served_rung(seed in 0u64..20) {
        let pipeline = pipeline();
        let budget = pipeline.arena_peak_bytes(224).unwrap() - 1;
        let data = DatasetSpec::cars_like().with_len(6).with_max_dimension(72).build(seed);
        let options = SloOptions::default()
            .with_latency_model(fixed_latency())
            .with_memory_budget_bytes(budget);
        let mut scheduler = SloScheduler::new(pipeline, options);
        for (i, sample) in data.iter().enumerate() {
            let arrival = i as f64 * 60.0;
            scheduler.submit(SloRequest::new(sample, arrival, arrival + 500.0));
        }
        let report = scheduler.run().unwrap();
        for outcome in &report.outcomes {
            if let SloOutcome::Completed(done) = outcome {
                prop_assert!(
                    pipeline.arena_peak_bytes(done.served_resolution).unwrap() <= budget,
                    "served rung {} overcommits the {} byte budget",
                    done.served_resolution,
                    budget
                );
            }
        }
        prop_assert_eq!(report.shed + report.expired + report.faulted, 0);
        prop_assert_eq!(report.completed, report.total, "budget demotes, never rejects");
    }
}

// ---------------------------------------------------------------------------
// Server invariants: bounded backpressure, typed rejection, exactly-one
// terminal outcome per ticket, idempotent shutdown.
// ---------------------------------------------------------------------------

fn server_options() -> SloOptions {
    SloOptions::default().with_latency_model(fixed_latency()).with_ssim_floor(0.30)
}

fn sample_arc(seed: u64) -> Arc<rescnn_data::Sample> {
    let data = DatasetSpec::cars_like().with_len(1).with_max_dimension(72).build(seed);
    Arc::new(data[0].clone())
}

/// Queue depth never exceeds the configured bound, and the submission that
/// would exceed it gets a typed `QueueFull` — never a silent drop. The event
/// loop is wedged behind a capacity-1 completion queue that nobody consumes,
/// so the inbox genuinely fills.
#[test]
fn server_queue_depth_never_exceeds_its_bound() {
    let capacity = 3usize;
    let config = ServerConfig::default()
        .with_options(server_options())
        .with_queue_capacity(capacity)
        .with_completion_capacity(1)
        .with_idle_tick_ms(1.0)
        .with_drain_deadline_ms(20_000.0);
    let mut server = SloServer::start(Arc::clone(pipeline()), config).unwrap();
    let stream = server.completions().unwrap();
    // Immediately-expiring requests settle without compute; the first
    // completion fills the queue, the second wedges the loop.
    let sample = sample_arc(3);
    let mut accepted = 0usize;
    let mut queue_full = 0usize;
    let give_up = Instant::now() + Duration::from_secs(20);
    while queue_full < 4 && Instant::now() < give_up {
        match server.submit(ServerRequest::new(Arc::clone(&sample), 0.0)) {
            Ok(_) => accepted += 1,
            Err(SubmitError::QueueFull { capacity: reported }) => {
                assert_eq!(reported, capacity);
                queue_full += 1;
            }
            Err(other) => panic!("unexpected rejection before drain: {other}"),
        }
        assert!(server.queue_depth() <= capacity, "queue depth exceeded its bound");
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(queue_full >= 4, "backpressure never engaged");
    // Release the wedge and finish: every accepted ticket still settles.
    drop(stream);
    server.drain();
    let report = server.join().unwrap();
    assert_eq!(report.submitted, accepted);
    assert_eq!(report.slo.outcomes.len(), accepted);
    assert!(report.rejected_queue_full >= queue_full);
}

/// From the moment `drain()` returns, every submit is rejected with the typed
/// `Draining` error — no race window in which a submission is silently
/// dropped or accepted-but-never-settled.
#[test]
fn server_submit_after_drain_start_is_always_rejected() {
    let server = SloServer::start(
        Arc::clone(pipeline()),
        ServerConfig::default().with_options(server_options()),
    )
    .unwrap();
    let sample = sample_arc(4);
    let ticket = server.submit(ServerRequest::new(Arc::clone(&sample), 60_000.0)).unwrap();
    server.drain();
    for _ in 0..8 {
        match server.submit(ServerRequest::new(Arc::clone(&sample), 60_000.0)) {
            Err(SubmitError::Draining | SubmitError::Stopped) => {}
            other => panic!("submit after drain must be rejected, got {other:?}"),
        }
    }
    let report = server.join().unwrap();
    assert_eq!(report.submitted, 1, "only the pre-drain ticket is owed an outcome");
    assert_eq!(report.slo.outcomes.len(), 1);
    assert!(report.rejected_draining >= 8);
    assert_eq!(ticket.0, 0);
}

/// Every accepted ticket yields exactly one terminal completion on the
/// stream, and the final report carries exactly one outcome per ticket.
#[test]
fn server_every_accepted_ticket_settles_exactly_once() {
    let mut server = SloServer::start(
        Arc::clone(pipeline()),
        ServerConfig::default().with_options(server_options()),
    )
    .unwrap();
    let stream = server.completions().unwrap();
    let sample = sample_arc(5);
    // Mixed fates: generous slack completes, zero slack expires.
    let slacks = [60_000.0, 0.0, 60_000.0, 0.0, 0.0];
    for slack in slacks {
        server.submit(ServerRequest::new(Arc::clone(&sample), slack)).unwrap();
    }
    server.drain();
    let report = server.join().unwrap();
    let mut seen = vec![0usize; slacks.len()];
    for completion in stream {
        seen[completion.ticket.0 as usize] += 1;
    }
    assert!(seen.iter().all(|&count| count == 1), "ticket settle counts {seen:?} must all be 1");
    assert_eq!(report.slo.outcomes.len(), slacks.len());
    assert_eq!(
        report.slo.completed
            + report.slo.shed
            + report.slo.breaker_shed
            + report.slo.expired
            + report.slo.faulted,
        slacks.len(),
        "outcome counters must partition the accepted tickets"
    );
}

/// Shutdown is idempotent: double-drain is a no-op, and dropping an
/// already-drained (or already-joined) server neither hangs nor panics.
#[test]
fn server_shutdown_is_idempotent() {
    let server = SloServer::start(
        Arc::clone(pipeline()),
        ServerConfig::default().with_options(server_options()),
    )
    .unwrap();
    let sample = sample_arc(6);
    server.submit(ServerRequest::new(sample, 60_000.0)).unwrap();
    assert!(server.drain());
    assert!(!server.drain(), "second drain must be a no-op");
    assert!(!server.drain());
    let report = server.join().unwrap();
    assert_eq!(report.submitted, 1);

    // Drop-after-drain: the drop path re-enters the drain/join sequence and
    // must be a clean no-op on an already-draining server.
    let server = SloServer::start(
        Arc::clone(pipeline()),
        ServerConfig::default().with_options(server_options()),
    )
    .unwrap();
    server.drain();
    drop(server);
}
