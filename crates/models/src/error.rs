//! Error types for model construction and inference.

use std::error::Error;
use std::fmt;

/// Error raised while building architectures or running inference.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// The input resolution is too small for the network's downsampling schedule.
    ResolutionTooSmall {
        /// Offending resolution.
        resolution: usize,
        /// Model name.
        model: &'static str,
    },
    /// The input tensor does not have the expected shape.
    BadInput {
        /// Explanation of the mismatch.
        reason: String,
    },
    /// An internal kernel failed (propagated from the tensor crate).
    Kernel(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::ResolutionTooSmall { resolution, model } => {
                write!(f, "resolution {resolution} is too small for {model}")
            }
            ModelError::BadInput { reason } => write!(f, "bad model input: {reason}"),
            ModelError::Kernel(msg) => write!(f, "kernel failure: {msg}"),
        }
    }
}

impl Error for ModelError {}

impl From<rescnn_tensor::TensorError> for ModelError {
    fn from(err: rescnn_tensor::TensorError) -> Self {
        ModelError::Kernel(err.to_string())
    }
}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ModelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let err = ModelError::ResolutionTooSmall { resolution: 2, model: "ResNet-18" };
        assert!(err.to_string().contains("ResNet-18"));
        let err = ModelError::BadInput { reason: "wrong channels".into() };
        assert!(err.to_string().contains("wrong channels"));
        let tensor_err = rescnn_tensor::TensorError::ZeroDimension { name: "kernel" };
        let converted: ModelError = tensor_err.into();
        assert!(converted.to_string().contains("kernel"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
