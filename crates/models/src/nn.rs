//! Executable networks with (randomly initialized) weights.
//!
//! The paper's accuracy numbers come from models trained on GPUs for days; reproducing the
//! training run is out of scope (the accuracy response is modelled by `rescnn-oracle`).
//! What *is* reproduced here is everything structural: real forward passes through real
//! convolution kernels, so that resolution-dependent compute behaviour (shapes, FLOPs,
//! kernel time) is measured rather than assumed. Networks are therefore instantiated with
//! deterministic random weights.

use std::sync::OnceLock;

use rescnn_tensor::{
    add_relu_in_place, avg_pool2d, conv2d_winograd_prepared, conv2d_with_algo, global_avg_pool,
    linear, max_pool2d, num_threads, planned_conv_algo, relu6_in_place, relu_in_place, softmax,
    Conv2dParams, ConvAlgo, FusedActivation, Pool2dParams, Shape, Tensor, WinogradFilter,
};

use crate::arch::{Activation, ArchSpec, BlockSpec, ModelKind};
use crate::error::{ModelError, Result};

/// A convolution + batch-norm + activation unit with instantiated weights.
///
/// At construction the (inference-mode) batch normalization is folded into the
/// convolution: `y = γ·(conv(x) − μ)/√(σ² + ε) + β` becomes a convolution with
/// scaled weights and a per-channel bias. The forward pass is therefore a single
/// engine-dispatched convolution plus an in-place activation — no extra passes or
/// allocations over the activation tensor.
///
/// Winograd-eligible layers (dense stride-1 3×3) additionally cache their
/// transformed filter bank `U = G·g·Gᵀ`: it is computed lazily the first time
/// the dispatch layer actually picks [`ConvAlgo::Winograd`] for this layer
/// (via a calibrated table or an override) and reused for every later forward,
/// so the per-pass cost is input/output transforms plus GEMMs only — with the
/// bias *and* the activation fused into the Winograd output transform, the
/// separate in-place activation sweep disappears too.
#[derive(Debug, Clone)]
struct ConvBn {
    params: Conv2dParams,
    /// Convolution weights with the batch-norm scale folded in.
    weight: Tensor,
    /// Per-channel bias with the batch-norm shift folded in.
    bias: Vec<f32>,
    act: Activation,
    /// Lazily-built Winograd filter transform (eligible layers only).
    winograd: OnceLock<WinogradFilter>,
}

impl ConvBn {
    const BN_EPS: f32 = 1e-5;

    fn new(params: Conv2dParams, act: Activation, seed: u64) -> Self {
        let fan_in = (params.in_channels / params.groups) * params.kernel * params.kernel;
        let mut weight = Tensor::kaiming(
            Shape::new(
                params.out_channels,
                params.in_channels / params.groups,
                params.kernel,
                params.kernel,
            ),
            fan_in,
            seed,
        );
        // Freshly-initialized batch-norm statistics: γ = 1, β = 0, μ = 0, σ² = 1.
        let gamma = vec![1.0f32; params.out_channels];
        let beta = vec![0.0f32; params.out_channels];
        let mean = vec![0.0f32; params.out_channels];
        let var = vec![1.0f32; params.out_channels];

        let per_channel = weight.shape().c * weight.shape().h * weight.shape().w;
        let wdata = weight.as_mut_slice();
        let mut bias = Vec::with_capacity(params.out_channels);
        for oc in 0..params.out_channels {
            let scale = gamma[oc] / (var[oc] + Self::BN_EPS).sqrt();
            for w in &mut wdata[oc * per_channel..(oc + 1) * per_channel] {
                *w *= scale;
            }
            bias.push(beta[oc] - mean[oc] * scale);
        }
        ConvBn { params, weight, bias, act, winograd: OnceLock::new() }
    }

    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        // One dispatch decision per layer call: the planned algorithm is both
        // branched on and executed, so a concurrent calibration swap can never
        // split the decision, and the hot path pays one table lookup, not two.
        let algo = planned_conv_algo(&self.params, input.shape());
        if algo == ConvAlgo::Winograd {
            // Cached-transform fast path: the filter transform is paid once per
            // layer, and bias + activation are fused into the output transform.
            let filter = self.winograd.get_or_init(|| {
                WinogradFilter::prepare(&self.weight, &self.params)
                    .expect("dispatch only plans Winograd for eligible layers")
            });
            let fused = match self.act {
                Activation::None => FusedActivation::None,
                Activation::Relu => FusedActivation::Relu,
                Activation::Relu6 => FusedActivation::Relu6,
            };
            let out =
                conv2d_winograd_prepared(input, filter, Some(&self.bias), &self.params, fused)?;
            return Ok(out);
        }
        let mut out = conv2d_with_algo(input, &self.weight, Some(&self.bias), &self.params, algo)?;
        match self.act {
            Activation::None => {}
            Activation::Relu => relu_in_place(&mut out),
            Activation::Relu6 => relu6_in_place(&mut out),
        }
        Ok(out)
    }
}

/// One executable layer.
#[derive(Debug, Clone)]
enum LayerImpl {
    ConvBn(ConvBn),
    MaxPool(Pool2dParams),
    Basic { conv1: ConvBn, conv2: ConvBn, downsample: Option<ConvBn> },
    Bottleneck { conv1: ConvBn, conv2: ConvBn, conv3: ConvBn, downsample: Option<ConvBn> },
    Inverted { expand: Option<ConvBn>, depthwise: ConvBn, project: ConvBn, skip: bool },
    GlobalAvgPool,
    Classifier { weight: Vec<f32>, bias: Vec<f32>, in_features: usize, out_features: usize },
}

/// An executable convolutional network.
///
/// # Examples
/// ```
/// use rescnn_models::{ModelKind, Network};
/// use rescnn_tensor::{Shape, Tensor};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = Network::new(ModelKind::ResNet18, 10, 0);
/// let input = Tensor::random_uniform(Shape::chw(3, 64, 64), 1.0, 1);
/// let logits = net.forward(&input)?;
/// assert_eq!(logits.shape().c, 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    kind: ModelKind,
    layers: Vec<LayerImpl>,
    num_classes: usize,
}

impl Network {
    /// Builds an executable network for a model family with deterministic random weights.
    pub fn new(kind: ModelKind, num_classes: usize, seed: u64) -> Self {
        Self::from_arch(&kind.arch(num_classes), seed)
    }

    /// Builds an executable network from a symbolic architecture.
    pub fn from_arch(arch: &ArchSpec, seed: u64) -> Self {
        let mut layers = Vec::with_capacity(arch.blocks.len());
        let mut next_seed = seed;
        let mut bump = || {
            next_seed =
                next_seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            next_seed
        };
        for block in &arch.blocks {
            let layer = match *block {
                BlockSpec::ConvBnAct { params, act } => {
                    LayerImpl::ConvBn(ConvBn::new(params, act, bump()))
                }
                BlockSpec::MaxPool(pool) => LayerImpl::MaxPool(pool),
                BlockSpec::BasicBlock { in_ch, out_ch, stride } => {
                    let conv1 = ConvBn::new(
                        Conv2dParams::new(in_ch, out_ch, 3, stride, 1),
                        Activation::Relu,
                        bump(),
                    );
                    let conv2 = ConvBn::new(
                        Conv2dParams::new(out_ch, out_ch, 3, 1, 1),
                        Activation::None,
                        bump(),
                    );
                    let downsample = (stride != 1 || in_ch != out_ch).then(|| {
                        ConvBn::new(
                            Conv2dParams::new(in_ch, out_ch, 1, stride, 0),
                            Activation::None,
                            bump(),
                        )
                    });
                    LayerImpl::Basic { conv1, conv2, downsample }
                }
                BlockSpec::Bottleneck { in_ch, mid_ch, out_ch, stride } => {
                    let conv1 = ConvBn::new(
                        Conv2dParams::new(in_ch, mid_ch, 1, 1, 0),
                        Activation::Relu,
                        bump(),
                    );
                    let conv2 = ConvBn::new(
                        Conv2dParams::new(mid_ch, mid_ch, 3, stride, 1),
                        Activation::Relu,
                        bump(),
                    );
                    let conv3 = ConvBn::new(
                        Conv2dParams::new(mid_ch, out_ch, 1, 1, 0),
                        Activation::None,
                        bump(),
                    );
                    let downsample = (stride != 1 || in_ch != out_ch).then(|| {
                        ConvBn::new(
                            Conv2dParams::new(in_ch, out_ch, 1, stride, 0),
                            Activation::None,
                            bump(),
                        )
                    });
                    LayerImpl::Bottleneck { conv1, conv2, conv3, downsample }
                }
                BlockSpec::InvertedResidual { in_ch, out_ch, stride, expand } => {
                    let hidden = in_ch * expand;
                    let expand_conv = (expand != 1).then(|| {
                        ConvBn::new(
                            Conv2dParams::new(in_ch, hidden, 1, 1, 0),
                            Activation::Relu6,
                            bump(),
                        )
                    });
                    let depthwise = ConvBn::new(
                        Conv2dParams::depthwise(hidden, 3, stride, 1),
                        Activation::Relu6,
                        bump(),
                    );
                    let project = ConvBn::new(
                        Conv2dParams::new(hidden, out_ch, 1, 1, 0),
                        Activation::None,
                        bump(),
                    );
                    LayerImpl::Inverted {
                        expand: expand_conv,
                        depthwise,
                        project,
                        skip: stride == 1 && in_ch == out_ch,
                    }
                }
                BlockSpec::GlobalAvgPool => LayerImpl::GlobalAvgPool,
                BlockSpec::Classifier { in_features, num_classes } => {
                    let w = Tensor::random_uniform(
                        Shape::new(1, 1, num_classes, in_features),
                        (1.0 / in_features as f32).sqrt(),
                        bump(),
                    );
                    LayerImpl::Classifier {
                        weight: w.into_vec(),
                        bias: vec![0.0; num_classes],
                        in_features,
                        out_features: num_classes,
                    }
                }
            };
            layers.push(layer);
        }
        Network { kind: arch.kind, layers, num_classes: arch.num_classes }
    }

    /// The model family this network was built from.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Number of layers (at block granularity).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Runs a forward pass, returning raw logits of shape `N × num_classes × 1 × 1`.
    ///
    /// # Errors
    /// Returns [`ModelError::BadInput`] if the input does not have three channels, or a
    /// kernel error if the resolution is too small for the downsampling schedule.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        if input.shape().c != 3 {
            return Err(ModelError::BadInput {
                reason: format!("expected 3 input channels, got {}", input.shape().c),
            });
        }
        let mut x = input.clone();
        for layer in &self.layers {
            x = match layer {
                LayerImpl::ConvBn(conv) => conv.forward(&x)?,
                LayerImpl::MaxPool(pool) => max_pool2d(&x, pool)?,
                LayerImpl::Basic { conv1, conv2, downsample } => {
                    let mut out = conv2.forward(&conv1.forward(&x)?)?;
                    match downsample {
                        Some(d) => add_relu_in_place(&mut out, &d.forward(&x)?)?,
                        None => add_relu_in_place(&mut out, &x)?,
                    }
                    out
                }
                LayerImpl::Bottleneck { conv1, conv2, conv3, downsample } => {
                    let mut out = conv3.forward(&conv2.forward(&conv1.forward(&x)?)?)?;
                    match downsample {
                        Some(d) => add_relu_in_place(&mut out, &d.forward(&x)?)?,
                        None => add_relu_in_place(&mut out, &x)?,
                    }
                    out
                }
                LayerImpl::Inverted { expand, depthwise, project, skip } => {
                    let mut out = match expand {
                        Some(e) => project.forward(&depthwise.forward(&e.forward(&x)?)?)?,
                        None => project.forward(&depthwise.forward(&x)?)?,
                    };
                    if *skip {
                        out.add_assign(&x)?;
                    }
                    out
                }
                LayerImpl::GlobalAvgPool => global_avg_pool(&x),
                LayerImpl::Classifier { weight, bias, in_features, out_features } => {
                    if x.shape().c != *in_features || x.shape().h != 1 || x.shape().w != 1 {
                        return Err(ModelError::BadInput {
                            reason: format!(
                                "classifier expected {}x1x1 features, got {}",
                                in_features,
                                x.shape()
                            ),
                        });
                    }
                    linear(&x, weight, Some(bias), *out_features)?
                }
            };
        }
        Ok(x)
    }

    /// Runs a forward pass and returns per-class probabilities (softmax of the logits).
    ///
    /// # Errors
    /// See [`Network::forward`].
    pub fn predict_probabilities(&self, input: &Tensor) -> Result<Tensor> {
        let logits = self.forward(input)?;
        Ok(softmax(&logits)?)
    }

    /// Runs a forward pass and returns the arg-max class index for a batch-1 input.
    ///
    /// # Errors
    /// See [`Network::forward`].
    pub fn predict_class(&self, input: &Tensor) -> Result<usize> {
        let logits = self.forward(input)?;
        Ok(logits.argmax().unwrap_or(0))
    }

    /// Runs forward passes for a batch of independent inputs (which may have
    /// heterogeneous resolutions), returning per-input logits in order.
    ///
    /// The engine's thread budget is split between sample-level and kernel-level
    /// parallelism with [`rescnn_tensor::split_parallelism`]: a batch with at
    /// least as many inputs as threads runs one sample per pool worker (each
    /// sample's kernels single-threaded), a smaller batch runs samples
    /// sequentially with fully parallel kernels. Either way results are bitwise
    /// identical to calling [`forward`](Self::forward) per input — the caller's
    /// [`rescnn_tensor::EngineContext`] (e.g. an algorithm override) is carried
    /// onto the worker threads.
    ///
    /// # Errors
    /// See [`Network::forward`]; the first failing input (in batch order) is
    /// reported.
    pub fn forward_batch(&self, inputs: &[Tensor]) -> Result<Vec<Tensor>> {
        rescnn_tensor::parallel::parallel_map_indexed(inputs.len(), num_threads(), |index| {
            self.forward(&inputs[index])
        })
        .into_iter()
        .collect()
    }

    /// Runs [`forward_batch`](Self::forward_batch) and returns the arg-max class
    /// index per input.
    ///
    /// # Errors
    /// See [`Network::forward_batch`].
    pub fn predict_batch(&self, inputs: &[Tensor]) -> Result<Vec<usize>> {
        let logits = self.forward_batch(inputs)?;
        Ok(logits.into_iter().map(|l| l.argmax().unwrap_or(0)).collect())
    }
}

/// A deliberately tiny CNN used in tests and examples where running a full ResNet would be
/// wastefully slow. It follows the same structural conventions (stem, stride-2 stages,
/// global pooling, linear head) and is resolution-agnostic.
#[derive(Debug, Clone)]
pub struct TinyCnn {
    stem: ConvBn,
    stage1: ConvBn,
    stage2: ConvBn,
    head_weight: Vec<f32>,
    head_bias: Vec<f32>,
    num_classes: usize,
}

impl TinyCnn {
    /// Builds a tiny CNN with deterministic random weights.
    pub fn new(num_classes: usize, seed: u64) -> Self {
        TinyCnn {
            stem: ConvBn::new(Conv2dParams::new(3, 8, 3, 2, 1), Activation::Relu, seed ^ 1),
            stage1: ConvBn::new(Conv2dParams::new(8, 16, 3, 2, 1), Activation::Relu, seed ^ 2),
            stage2: ConvBn::new(Conv2dParams::new(16, 32, 3, 2, 1), Activation::Relu, seed ^ 3),
            head_weight: Tensor::random_uniform(Shape::new(1, 1, num_classes, 32), 0.2, seed ^ 4)
                .into_vec(),
            head_bias: vec![0.0; num_classes],
            num_classes,
        }
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Forward pass returning logits.
    ///
    /// # Errors
    /// Returns a kernel error if the input is smaller than the downsampling schedule allows.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        let x = self.stem.forward(input)?;
        let x = self.stage1.forward(&x)?;
        let x = self.stage2.forward(&x)?;
        let x = avg_pool2d(
            &x,
            &Pool2dParams::new(x.shape().h.min(x.shape().w), x.shape().h.min(x.shape().w), 0),
        )?;
        let x = global_avg_pool(&x);
        Ok(linear(&x, &self.head_weight, Some(&self.head_bias), self.num_classes)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_cnn_forward_shapes() {
        let net = TinyCnn::new(7, 3);
        assert_eq!(net.num_classes(), 7);
        for res in [16usize, 24, 32, 48] {
            let input = Tensor::random_uniform(Shape::chw(3, res, res), 1.0, res as u64);
            let out = net.forward(&input).unwrap();
            assert_eq!(out.shape(), Shape::new(1, 7, 1, 1));
            assert!(!out.has_non_finite());
        }
    }

    #[test]
    fn resnet18_forward_is_resolution_agnostic() {
        let net = Network::new(ModelKind::ResNet18, 5, 0);
        assert_eq!(net.kind(), ModelKind::ResNet18);
        assert_eq!(net.num_classes(), 5);
        assert!(net.num_layers() > 8);
        for res in [32usize, 56, 64] {
            let input = Tensor::random_uniform(Shape::chw(3, res, res), 1.0, 9);
            let logits = net.forward(&input).unwrap();
            assert_eq!(logits.shape(), Shape::new(1, 5, 1, 1));
            assert!(!logits.has_non_finite(), "non-finite logits at {res}");
        }
    }

    #[test]
    fn resnet50_and_mobilenet_forward_small_input() {
        let r50 = Network::new(ModelKind::ResNet50, 4, 1);
        let input = Tensor::random_uniform(Shape::chw(3, 32, 32), 1.0, 2);
        let out = r50.forward(&input).unwrap();
        assert_eq!(out.shape().c, 4);
        assert!(!out.has_non_finite());

        let mb2 = Network::new(ModelKind::MobileNetV2, 4, 1);
        let out = mb2.forward(&input).unwrap();
        assert_eq!(out.shape().c, 4);
        assert!(!out.has_non_finite());
    }

    #[test]
    fn forward_is_deterministic_per_seed() {
        let a = Network::new(ModelKind::ResNet18, 3, 7);
        let b = Network::new(ModelKind::ResNet18, 3, 7);
        let c = Network::new(ModelKind::ResNet18, 3, 8);
        let input = Tensor::random_uniform(Shape::chw(3, 40, 40), 1.0, 5);
        let out_a = a.forward(&input).unwrap();
        let out_b = b.forward(&input).unwrap();
        let out_c = c.forward(&input).unwrap();
        assert!(out_a.max_abs_diff(&out_b).unwrap() < 1e-6);
        assert!(out_a.max_abs_diff(&out_c).unwrap() > 1e-6);
    }

    #[test]
    fn batched_forward_matches_per_sample_bitwise() {
        let net = Network::new(ModelKind::ResNet18, 4, 11);
        // Mixed-resolution batch, larger than typical thread counts so the outer
        // (sample-parallel) path is exercised on multi-core hosts.
        let inputs: Vec<Tensor> = [24usize, 32, 40, 24, 56, 32, 48, 40, 24, 32]
            .iter()
            .enumerate()
            .map(|(i, &res)| Tensor::random_uniform(Shape::chw(3, res, res), 1.0, i as u64))
            .collect();
        let batched = net.forward_batch(&inputs).unwrap();
        assert_eq!(batched.len(), inputs.len());
        for (input, batched_logits) in inputs.iter().zip(&batched) {
            let solo = net.forward(input).unwrap();
            assert_eq!(
                solo.as_slice(),
                batched_logits.as_slice(),
                "batched forward must be bitwise identical to per-sample forward"
            );
        }
        let classes = net.predict_batch(&inputs).unwrap();
        assert_eq!(classes.len(), inputs.len());
        assert!(classes.iter().all(|&c| c < 4));
    }

    #[test]
    fn batched_forward_carries_caller_context_to_workers() {
        use rescnn_tensor::{ConvAlgo, EngineContext};
        // Regression: the outer (pool-worker) path used to rebuild the task
        // context from scratch, silently dropping a caller-installed algorithm
        // override for samples that landed on worker threads.
        let net = Network::new(ModelKind::ResNet18, 3, 5);
        let inputs: Vec<Tensor> =
            (0..6).map(|i| Tensor::random_uniform(Shape::chw(3, 24, 24), 1.0, i as u64)).collect();
        let context = EngineContext::new().with_threads(3).with_algo(ConvAlgo::Direct);
        let expected: Vec<Tensor> =
            context.scope(|| inputs.iter().map(|x| net.forward(x).unwrap()).collect());
        let batched = context.scope(|| net.forward_batch(&inputs).unwrap());
        for (solo, batch) in expected.iter().zip(&batched) {
            assert_eq!(
                solo.as_slice(),
                batch.as_slice(),
                "caller context must apply identically on every batch slot"
            );
        }
    }

    #[test]
    fn batched_forward_reports_first_bad_input() {
        let net = Network::new(ModelKind::ResNet18, 3, 0);
        let inputs = vec![
            Tensor::random_uniform(Shape::chw(3, 32, 32), 1.0, 1),
            Tensor::random_uniform(Shape::chw(1, 32, 32), 1.0, 2),
        ];
        assert!(net.forward_batch(&inputs).is_err());
        assert!(net.forward_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn probabilities_and_class_prediction() {
        let net = Network::new(ModelKind::ResNet18, 6, 2);
        let input = Tensor::random_uniform(Shape::chw(3, 48, 48), 1.0, 3);
        let probs = net.predict_probabilities(&input).unwrap();
        let sum: f32 = probs.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        let class = net.predict_class(&input).unwrap();
        assert!(class < 6);
    }

    #[test]
    fn winograd_forward_matches_default_within_tolerance() {
        use rescnn_tensor::EngineContext;
        // Forcing the Winograd arm routes every dense stride-1 3×3 layer through
        // the cached filter-transform path (with fused bias + activation);
        // ineligible shapes keep their engine fast paths. Winograd reassociates
        // arithmetic, so the contract is elementwise tolerance, not bitwise
        // equality — and the cache must make repeat passes identical.
        let net = Network::new(ModelKind::ResNet18, 5, 21);
        let input = Tensor::random_uniform(Shape::chw(3, 64, 64), 1.0, 4);
        let default_out = net.forward(&input).unwrap();
        let wino_context = EngineContext::new().with_algo(ConvAlgo::Winograd);
        let wino_out = wino_context.scope(|| net.forward(&input).unwrap());
        assert!(
            default_out.max_abs_diff(&wino_out).unwrap() < 1e-2,
            "winograd forward drifted: {}",
            default_out.max_abs_diff(&wino_out).unwrap()
        );
        let wino_again = wino_context.scope(|| net.forward(&input).unwrap());
        assert_eq!(
            wino_out.as_slice(),
            wino_again.as_slice(),
            "cached filter transforms must make repeat winograd passes bitwise identical"
        );
    }

    #[test]
    fn wrong_channel_count_is_rejected() {
        let net = Network::new(ModelKind::ResNet18, 3, 0);
        let input = Tensor::zeros(Shape::chw(1, 64, 64));
        assert!(matches!(net.forward(&input), Err(ModelError::BadInput { .. })));
    }

    #[test]
    fn degenerate_small_input_still_produces_logits() {
        // Padding plus global average pooling make the networks tolerant of absurdly small
        // inputs; the result is meaningless but must be well-formed and finite.
        let net = Network::new(ModelKind::ResNet50, 3, 0);
        let input = Tensor::zeros(Shape::chw(3, 2, 2));
        let out = net.forward(&input).unwrap();
        assert_eq!(out.shape().c, 3);
        assert!(!out.has_non_finite());
    }
}
