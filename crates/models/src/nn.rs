//! Executable networks with (randomly initialized) weights.
//!
//! The paper's accuracy numbers come from models trained on GPUs for days; reproducing the
//! training run is out of scope (the accuracy response is modelled by `rescnn-oracle`).
//! What *is* reproduced here is everything structural: real forward passes through real
//! convolution kernels, so that resolution-dependent compute behaviour (shapes, FLOPs,
//! kernel time) is measured rather than assumed. Networks are therefore instantiated with
//! deterministic random weights.

use rescnn_tensor::{
    avg_pool2d, batch_norm, conv2d, global_avg_pool, linear, max_pool2d, relu, relu6, softmax,
    Conv2dParams, Pool2dParams, Shape, Tensor,
};

use crate::arch::{Activation, ArchSpec, BlockSpec, ModelKind};
use crate::error::{ModelError, Result};

/// A convolution + batch-norm + activation unit with instantiated weights.
#[derive(Debug, Clone)]
struct ConvBn {
    params: Conv2dParams,
    weight: Tensor,
    gamma: Vec<f32>,
    beta: Vec<f32>,
    mean: Vec<f32>,
    var: Vec<f32>,
    act: Activation,
}

impl ConvBn {
    fn new(params: Conv2dParams, act: Activation, seed: u64) -> Self {
        let fan_in = (params.in_channels / params.groups) * params.kernel * params.kernel;
        let weight = Tensor::kaiming(
            Shape::new(
                params.out_channels,
                params.in_channels / params.groups,
                params.kernel,
                params.kernel,
            ),
            fan_in,
            seed,
        );
        ConvBn {
            params,
            weight,
            gamma: vec![1.0; params.out_channels],
            beta: vec![0.0; params.out_channels],
            mean: vec![0.0; params.out_channels],
            var: vec![1.0; params.out_channels],
            act,
        }
    }

    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        let conv = conv2d(input, &self.weight, None, &self.params)?;
        let normed = batch_norm(&conv, &self.mean, &self.var, &self.gamma, &self.beta, 1e-5)?;
        Ok(match self.act {
            Activation::None => normed,
            Activation::Relu => relu(&normed),
            Activation::Relu6 => relu6(&normed),
        })
    }
}

/// One executable layer.
#[derive(Debug, Clone)]
enum LayerImpl {
    ConvBn(ConvBn),
    MaxPool(Pool2dParams),
    Basic { conv1: ConvBn, conv2: ConvBn, downsample: Option<ConvBn> },
    Bottleneck { conv1: ConvBn, conv2: ConvBn, conv3: ConvBn, downsample: Option<ConvBn> },
    Inverted { expand: Option<ConvBn>, depthwise: ConvBn, project: ConvBn, skip: bool },
    GlobalAvgPool,
    Classifier { weight: Vec<f32>, bias: Vec<f32>, in_features: usize, out_features: usize },
}

/// An executable convolutional network.
///
/// # Examples
/// ```
/// use rescnn_models::{ModelKind, Network};
/// use rescnn_tensor::{Shape, Tensor};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = Network::new(ModelKind::ResNet18, 10, 0);
/// let input = Tensor::random_uniform(Shape::chw(3, 64, 64), 1.0, 1);
/// let logits = net.forward(&input)?;
/// assert_eq!(logits.shape().c, 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    kind: ModelKind,
    layers: Vec<LayerImpl>,
    num_classes: usize,
}

impl Network {
    /// Builds an executable network for a model family with deterministic random weights.
    pub fn new(kind: ModelKind, num_classes: usize, seed: u64) -> Self {
        Self::from_arch(&kind.arch(num_classes), seed)
    }

    /// Builds an executable network from a symbolic architecture.
    pub fn from_arch(arch: &ArchSpec, seed: u64) -> Self {
        let mut layers = Vec::with_capacity(arch.blocks.len());
        let mut next_seed = seed;
        let mut bump = || {
            next_seed = next_seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            next_seed
        };
        for block in &arch.blocks {
            let layer = match *block {
                BlockSpec::ConvBnAct { params, act } => {
                    LayerImpl::ConvBn(ConvBn::new(params, act, bump()))
                }
                BlockSpec::MaxPool(pool) => LayerImpl::MaxPool(pool),
                BlockSpec::BasicBlock { in_ch, out_ch, stride } => {
                    let conv1 =
                        ConvBn::new(Conv2dParams::new(in_ch, out_ch, 3, stride, 1), Activation::Relu, bump());
                    let conv2 =
                        ConvBn::new(Conv2dParams::new(out_ch, out_ch, 3, 1, 1), Activation::None, bump());
                    let downsample = (stride != 1 || in_ch != out_ch).then(|| {
                        ConvBn::new(Conv2dParams::new(in_ch, out_ch, 1, stride, 0), Activation::None, bump())
                    });
                    LayerImpl::Basic { conv1, conv2, downsample }
                }
                BlockSpec::Bottleneck { in_ch, mid_ch, out_ch, stride } => {
                    let conv1 =
                        ConvBn::new(Conv2dParams::new(in_ch, mid_ch, 1, 1, 0), Activation::Relu, bump());
                    let conv2 =
                        ConvBn::new(Conv2dParams::new(mid_ch, mid_ch, 3, stride, 1), Activation::Relu, bump());
                    let conv3 =
                        ConvBn::new(Conv2dParams::new(mid_ch, out_ch, 1, 1, 0), Activation::None, bump());
                    let downsample = (stride != 1 || in_ch != out_ch).then(|| {
                        ConvBn::new(Conv2dParams::new(in_ch, out_ch, 1, stride, 0), Activation::None, bump())
                    });
                    LayerImpl::Bottleneck { conv1, conv2, conv3, downsample }
                }
                BlockSpec::InvertedResidual { in_ch, out_ch, stride, expand } => {
                    let hidden = in_ch * expand;
                    let expand_conv = (expand != 1).then(|| {
                        ConvBn::new(Conv2dParams::new(in_ch, hidden, 1, 1, 0), Activation::Relu6, bump())
                    });
                    let depthwise =
                        ConvBn::new(Conv2dParams::depthwise(hidden, 3, stride, 1), Activation::Relu6, bump());
                    let project =
                        ConvBn::new(Conv2dParams::new(hidden, out_ch, 1, 1, 0), Activation::None, bump());
                    LayerImpl::Inverted {
                        expand: expand_conv,
                        depthwise,
                        project,
                        skip: stride == 1 && in_ch == out_ch,
                    }
                }
                BlockSpec::GlobalAvgPool => LayerImpl::GlobalAvgPool,
                BlockSpec::Classifier { in_features, num_classes } => {
                    let w = Tensor::random_uniform(
                        Shape::new(1, 1, num_classes, in_features),
                        (1.0 / in_features as f32).sqrt(),
                        bump(),
                    );
                    LayerImpl::Classifier {
                        weight: w.into_vec(),
                        bias: vec![0.0; num_classes],
                        in_features,
                        out_features: num_classes,
                    }
                }
            };
            layers.push(layer);
        }
        Network { kind: arch.kind, layers, num_classes: arch.num_classes }
    }

    /// The model family this network was built from.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Number of layers (at block granularity).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Runs a forward pass, returning raw logits of shape `N × num_classes × 1 × 1`.
    ///
    /// # Errors
    /// Returns [`ModelError::BadInput`] if the input does not have three channels, or a
    /// kernel error if the resolution is too small for the downsampling schedule.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        if input.shape().c != 3 {
            return Err(ModelError::BadInput {
                reason: format!("expected 3 input channels, got {}", input.shape().c),
            });
        }
        let mut x = input.clone();
        for layer in &self.layers {
            x = match layer {
                LayerImpl::ConvBn(conv) => conv.forward(&x)?,
                LayerImpl::MaxPool(pool) => max_pool2d(&x, pool)?,
                LayerImpl::Basic { conv1, conv2, downsample } => {
                    let identity = match downsample {
                        Some(d) => d.forward(&x)?,
                        None => x.clone(),
                    };
                    let mut out = conv2.forward(&conv1.forward(&x)?)?;
                    out.add_assign(&identity)?;
                    relu(&out)
                }
                LayerImpl::Bottleneck { conv1, conv2, conv3, downsample } => {
                    let identity = match downsample {
                        Some(d) => d.forward(&x)?,
                        None => x.clone(),
                    };
                    let mut out = conv3.forward(&conv2.forward(&conv1.forward(&x)?)?)?;
                    out.add_assign(&identity)?;
                    relu(&out)
                }
                LayerImpl::Inverted { expand, depthwise, project, skip } => {
                    let expanded = match expand {
                        Some(e) => e.forward(&x)?,
                        None => x.clone(),
                    };
                    let mut out = project.forward(&depthwise.forward(&expanded)?)?;
                    if *skip {
                        out.add_assign(&x)?;
                    }
                    out
                }
                LayerImpl::GlobalAvgPool => global_avg_pool(&x),
                LayerImpl::Classifier { weight, bias, in_features, out_features } => {
                    if x.shape().c != *in_features || x.shape().h != 1 || x.shape().w != 1 {
                        return Err(ModelError::BadInput {
                            reason: format!(
                                "classifier expected {}x1x1 features, got {}",
                                in_features,
                                x.shape()
                            ),
                        });
                    }
                    linear(&x, weight, Some(bias), *out_features)?
                }
            };
        }
        Ok(x)
    }

    /// Runs a forward pass and returns per-class probabilities (softmax of the logits).
    ///
    /// # Errors
    /// See [`Network::forward`].
    pub fn predict_probabilities(&self, input: &Tensor) -> Result<Tensor> {
        let logits = self.forward(input)?;
        Ok(softmax(&logits)?)
    }

    /// Runs a forward pass and returns the arg-max class index for a batch-1 input.
    ///
    /// # Errors
    /// See [`Network::forward`].
    pub fn predict_class(&self, input: &Tensor) -> Result<usize> {
        let logits = self.forward(input)?;
        Ok(logits.argmax().unwrap_or(0))
    }
}

/// A deliberately tiny CNN used in tests and examples where running a full ResNet would be
/// wastefully slow. It follows the same structural conventions (stem, stride-2 stages,
/// global pooling, linear head) and is resolution-agnostic.
#[derive(Debug, Clone)]
pub struct TinyCnn {
    stem: ConvBn,
    stage1: ConvBn,
    stage2: ConvBn,
    head_weight: Vec<f32>,
    head_bias: Vec<f32>,
    num_classes: usize,
}

impl TinyCnn {
    /// Builds a tiny CNN with deterministic random weights.
    pub fn new(num_classes: usize, seed: u64) -> Self {
        TinyCnn {
            stem: ConvBn::new(Conv2dParams::new(3, 8, 3, 2, 1), Activation::Relu, seed ^ 1),
            stage1: ConvBn::new(Conv2dParams::new(8, 16, 3, 2, 1), Activation::Relu, seed ^ 2),
            stage2: ConvBn::new(Conv2dParams::new(16, 32, 3, 2, 1), Activation::Relu, seed ^ 3),
            head_weight: Tensor::random_uniform(
                Shape::new(1, 1, num_classes, 32),
                0.2,
                seed ^ 4,
            )
            .into_vec(),
            head_bias: vec![0.0; num_classes],
            num_classes,
        }
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Forward pass returning logits.
    ///
    /// # Errors
    /// Returns a kernel error if the input is smaller than the downsampling schedule allows.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        let x = self.stem.forward(input)?;
        let x = self.stage1.forward(&x)?;
        let x = self.stage2.forward(&x)?;
        let x = avg_pool2d(
            &x,
            &Pool2dParams::new(x.shape().h.min(x.shape().w), x.shape().h.min(x.shape().w), 0),
        )?;
        let x = global_avg_pool(&x);
        Ok(linear(&x, &self.head_weight, Some(&self.head_bias), self.num_classes)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_cnn_forward_shapes() {
        let net = TinyCnn::new(7, 3);
        assert_eq!(net.num_classes(), 7);
        for res in [16usize, 24, 32, 48] {
            let input = Tensor::random_uniform(Shape::chw(3, res, res), 1.0, res as u64);
            let out = net.forward(&input).unwrap();
            assert_eq!(out.shape(), Shape::new(1, 7, 1, 1));
            assert!(!out.has_non_finite());
        }
    }

    #[test]
    fn resnet18_forward_is_resolution_agnostic() {
        let net = Network::new(ModelKind::ResNet18, 5, 0);
        assert_eq!(net.kind(), ModelKind::ResNet18);
        assert_eq!(net.num_classes(), 5);
        assert!(net.num_layers() > 8);
        for res in [32usize, 56, 64] {
            let input = Tensor::random_uniform(Shape::chw(3, res, res), 1.0, 9);
            let logits = net.forward(&input).unwrap();
            assert_eq!(logits.shape(), Shape::new(1, 5, 1, 1));
            assert!(!logits.has_non_finite(), "non-finite logits at {res}");
        }
    }

    #[test]
    fn resnet50_and_mobilenet_forward_small_input() {
        let r50 = Network::new(ModelKind::ResNet50, 4, 1);
        let input = Tensor::random_uniform(Shape::chw(3, 32, 32), 1.0, 2);
        let out = r50.forward(&input).unwrap();
        assert_eq!(out.shape().c, 4);
        assert!(!out.has_non_finite());

        let mb2 = Network::new(ModelKind::MobileNetV2, 4, 1);
        let out = mb2.forward(&input).unwrap();
        assert_eq!(out.shape().c, 4);
        assert!(!out.has_non_finite());
    }

    #[test]
    fn forward_is_deterministic_per_seed() {
        let a = Network::new(ModelKind::ResNet18, 3, 7);
        let b = Network::new(ModelKind::ResNet18, 3, 7);
        let c = Network::new(ModelKind::ResNet18, 3, 8);
        let input = Tensor::random_uniform(Shape::chw(3, 40, 40), 1.0, 5);
        let out_a = a.forward(&input).unwrap();
        let out_b = b.forward(&input).unwrap();
        let out_c = c.forward(&input).unwrap();
        assert!(out_a.max_abs_diff(&out_b).unwrap() < 1e-6);
        assert!(out_a.max_abs_diff(&out_c).unwrap() > 1e-6);
    }

    #[test]
    fn probabilities_and_class_prediction() {
        let net = Network::new(ModelKind::ResNet18, 6, 2);
        let input = Tensor::random_uniform(Shape::chw(3, 48, 48), 1.0, 3);
        let probs = net.predict_probabilities(&input).unwrap();
        let sum: f32 = probs.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        let class = net.predict_class(&input).unwrap();
        assert!(class < 6);
    }

    #[test]
    fn wrong_channel_count_is_rejected() {
        let net = Network::new(ModelKind::ResNet18, 3, 0);
        let input = Tensor::zeros(Shape::chw(1, 64, 64));
        assert!(matches!(net.forward(&input), Err(ModelError::BadInput { .. })));
    }

    #[test]
    fn degenerate_small_input_still_produces_logits() {
        // Padding plus global average pooling make the networks tolerant of absurdly small
        // inputs; the result is meaningless but must be well-formed and finite.
        let net = Network::new(ModelKind::ResNet50, 3, 0);
        let input = Tensor::zeros(Shape::chw(3, 2, 2));
        let out = net.forward(&input).unwrap();
        assert_eq!(out.shape().c, 3);
        assert!(!out.has_non_finite());
    }
}
