//! Executable networks with (randomly initialized) weights.
//!
//! The paper's accuracy numbers come from models trained on GPUs for days; reproducing the
//! training run is out of scope (the accuracy response is modelled by `rescnn-oracle`).
//! What *is* reproduced here is everything structural: real forward passes through real
//! convolution kernels, so that resolution-dependent compute behaviour (shapes, FLOPs,
//! kernel time) is measured rather than assumed. Networks are therefore instantiated with
//! deterministic random weights.
//!
//! # Execution stage
//!
//! Every layer is *prepared once* at construction
//! ([`rescnn_tensor::PreparedLayer`]): batch-norm is folded into the convolution,
//! the folded weights are prepacked into GEMM panel layout per channel group, and
//! Winograd-eligible layers cache their transformed filter bank. A forward pass
//! then
//!
//! * never repacks a weight panel,
//! * fuses each layer's activation — and each residual block's tail
//!   (`+identity → ReLU`) — into the kernel's output write instead of separate
//!   sweeps over the feature map, and
//! * runs entirely out of a reusable [`ActivationArena`] (per thread, persistent
//!   on the engine's worker pool), so warm forwards perform **zero heap
//!   allocations** for activations and packing — pinned by
//!   `rescnn_tensor::scratch::heap_allocations` in `tests/prepacked_forward.rs`.
//!
//! All three transformations are bitwise-neutral (data movement, fusion of
//! pointwise tails in the same order, buffer recycling), so
//! [`Network::forward`] is bitwise identical to the unprepared reference
//! execution kept as [`Network::forward_reference`]. One deliberate numerics
//! change rides along: the classifier now runs on the packed GEMM
//! ([`rescnn_tensor::linear_prepared`], shared by both paths), whose KC-blocked
//! vector reduction agrees with the old scalar `linear` only to reassociation
//! level (~1e-4) — logits are *not* bit-comparable with pre-PR recordings.

use rescnn_tensor::{
    add_relu_in_place, avg_pool2d, chain_plan, conv2d_chain_fused_into,
    conv2d_winograd_f4_prepared, conv2d_winograd_prepared, conv2d_with_algo, global_avg_pool_into,
    linear_prepared, linear_prepared_into, max_pool2d_into, num_threads, planned_conv_algo,
    relu6_in_place, relu_in_place, softmax, with_thread_arena, ActivationArena, ChainPlan,
    Conv2dParams, ConvAlgo, ConvEpilogue, FusedActivation, Pool2dParams, PreparedGemmB,
    PreparedLayer, Shape, Tensor,
};

use crate::arch::{Activation, ArchSpec, BlockSpec, ModelKind};
use crate::error::{ModelError, Result};

/// A convolution + batch-norm + activation unit with instantiated weights.
///
/// At construction the (inference-mode) batch normalization is folded into the
/// convolution: `y = γ·(conv(x) − μ)/√(σ² + ε) + β` becomes a convolution with
/// scaled weights and a per-channel bias, and the folded layer is prepared for
/// the serving hot path ([`PreparedLayer`]: per-group prepacked GEMM weight
/// panels, lazily-cached Winograd filter transform). The forward pass is one
/// engine-dispatched convolution with the activation — and, at block tails, the
/// residual add — fused into the kernel's output write.
#[derive(Debug, Clone)]
struct ConvBn {
    prepared: PreparedLayer,
    act: Activation,
}

impl ConvBn {
    const BN_EPS: f32 = 1e-5;

    fn new(params: Conv2dParams, act: Activation, seed: u64) -> Self {
        let fan_in = (params.in_channels / params.groups) * params.kernel * params.kernel;
        let mut weight = Tensor::kaiming(
            Shape::new(
                params.out_channels,
                params.in_channels / params.groups,
                params.kernel,
                params.kernel,
            ),
            fan_in,
            seed,
        );
        // Freshly-initialized batch-norm statistics: γ = 1, β = 0, μ = 0, σ² = 1.
        let gamma = vec![1.0f32; params.out_channels];
        let beta = vec![0.0f32; params.out_channels];
        let mean = vec![0.0f32; params.out_channels];
        let var = vec![1.0f32; params.out_channels];

        let per_channel = weight.shape().c * weight.shape().h * weight.shape().w;
        let wdata = weight.as_mut_slice();
        let mut bias = Vec::with_capacity(params.out_channels);
        for oc in 0..params.out_channels {
            let scale = gamma[oc] / (var[oc] + Self::BN_EPS).sqrt();
            for w in &mut wdata[oc * per_channel..(oc + 1) * per_channel] {
                *w *= scale;
            }
            bias.push(beta[oc] - mean[oc] * scale);
        }
        let prepared =
            PreparedLayer::new(weight, Some(bias), params).expect("layer shapes are consistent");
        ConvBn { prepared, act }
    }

    fn fused_act(&self) -> FusedActivation {
        match self.act {
            Activation::None => FusedActivation::None,
            Activation::Relu => FusedActivation::Relu,
            Activation::Relu6 => FusedActivation::Relu6,
        }
    }

    fn output_shape(&self, input: Shape) -> Result<Shape> {
        Ok(self.prepared.params().output_shape(input)?)
    }

    /// Prepared forward with the layer's own activation fused, output from the
    /// arena.
    fn forward(&self, input: &Tensor, arena: &mut ActivationArena) -> Result<Tensor> {
        self.forward_tail(input, None, self.fused_act(), arena)
    }

    /// Prepared forward with an explicit fused tail (block tails pass the
    /// post-residual activation; the layer's own activation is `None` there).
    fn forward_tail(
        &self,
        input: &Tensor,
        residual: Option<&Tensor>,
        activation: FusedActivation,
        arena: &mut ActivationArena,
    ) -> Result<Tensor> {
        // A fused tail *replaces* the layer's own activation, which is only
        // sound while tail convolutions are built with `Activation::None` (as
        // every shipped block family is) — otherwise the reference path would
        // apply the layer activation before the residual add and diverge.
        debug_assert!(
            activation == self.fused_act() || matches!(self.act, Activation::None),
            "fused tail would drop this layer's own activation"
        );
        let mut out = arena.take(self.output_shape(input.shape())?);
        let epilogue = ConvEpilogue { activation, residual };
        self.prepared.forward_fused_into(input, epilogue, &mut out)?;
        Ok(out)
    }

    /// Widens the layer's recorded int8 activation range with one observed
    /// input tensor (the range-calibration pass feeds every calibration
    /// sample through this).
    fn observe_int8_range(&mut self, input: &Tensor) {
        let (lo, hi) = rescnn_tensor::tensor_range(input);
        let (lo, hi) = match self.prepared.int8_range() {
            Some((plo, phi)) => (plo.min(lo), phi.max(hi)),
            None => (lo, hi),
        };
        self.prepared.set_int8_range(lo, hi);
    }

    /// The PR-4-era execution path: per-call weight packing (except the cached
    /// Winograd transform, which PR 4 already cached), separate activation
    /// passes, fresh allocations. Kept as the measured baseline and the parity
    /// target — bitwise identical to [`ConvBn::forward`].
    fn forward_reference(&self, input: &Tensor) -> Result<Tensor> {
        let params = self.prepared.params();
        let algo = planned_conv_algo(params, input.shape());
        if algo == ConvAlgo::Winograd {
            let filter = self.prepared.winograd_filter()?;
            let out = conv2d_winograd_prepared(
                input,
                filter,
                self.prepared.bias(),
                params,
                self.fused_act(),
            )?;
            return Ok(out);
        }
        if algo == ConvAlgo::WinogradF4 {
            let filter = self.prepared.winograd_filter_f4()?;
            let out = conv2d_winograd_f4_prepared(
                input,
                filter,
                self.prepared.bias(),
                params,
                self.fused_act(),
            )?;
            return Ok(out);
        }
        if algo == ConvAlgo::Int8 {
            // The quantized path must read the same prepared weight panels and
            // calibration-recorded activation range as the hot path, or the two
            // would disagree bitwise whenever a range is recorded.
            let mut out = Tensor::zeros(params.output_shape(input.shape())?);
            self.prepared.forward_with_algo_into(
                input,
                ConvAlgo::Int8,
                ConvEpilogue::activation(self.fused_act()),
                &mut out,
            )?;
            return Ok(out);
        }
        let mut out =
            conv2d_with_algo(input, self.prepared.weight(), self.prepared.bias(), params, algo)?;
        match self.act {
            Activation::None => {}
            Activation::Relu => relu_in_place(&mut out),
            Activation::Relu6 => relu6_in_place(&mut out),
        }
        Ok(out)
    }
}

/// The arena shape of a chain's intermediate ring band (a flat scratch strip;
/// the chain executor addresses it directly).
fn band_shape(plan: &ChainPlan) -> Shape {
    Shape::new(1, 1, 1, plan.band_elems)
}

/// Executes a planned producer→consumer chain ([`rescnn_tensor::chain_plan`])
/// with the block-tail epilogue fused into the consumer, band and output from
/// the arena. Bitwise identical to `producer.forward` + `consumer.forward_tail`.
fn forward_chained(
    producer: &ConvBn,
    consumer: &ConvBn,
    input: &Tensor,
    residual: Option<&Tensor>,
    activation: FusedActivation,
    plan: &ChainPlan,
    arena: &mut ActivationArena,
) -> Result<Tensor> {
    let mid = producer.output_shape(input.shape())?;
    let mut band = arena.take(band_shape(plan));
    let mut out = arena.take(consumer.output_shape(mid)?);
    conv2d_chain_fused_into(
        input,
        &producer.prepared,
        &consumer.prepared,
        producer.fused_act(),
        ConvEpilogue { activation, residual },
        &mut band,
        &mut out,
        plan,
    )?;
    arena.give(band);
    Ok(out)
}

/// One executable layer. (Variant sizes legitimately differ — a bottleneck
/// carries four prepared convolutions, a pooling layer none — and the enum
/// lives in a per-network `Vec`, so boxing variants would only add indirection
/// to the forward hot loop.)
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
enum LayerImpl {
    ConvBn(ConvBn),
    MaxPool(Pool2dParams),
    Basic { conv1: ConvBn, conv2: ConvBn, downsample: Option<ConvBn> },
    Bottleneck { conv1: ConvBn, conv2: ConvBn, conv3: ConvBn, downsample: Option<ConvBn> },
    Inverted { expand: Option<ConvBn>, depthwise: ConvBn, project: ConvBn, skip: bool },
    GlobalAvgPool,
    Classifier { weight: PreparedGemmB, bias: Vec<f32>, in_features: usize, out_features: usize },
}

/// The current activation flowing through a forward pass: the caller's input is
/// borrowed (no per-request clone), everything after the first layer is an
/// arena-owned tensor retired as soon as it goes dead.
enum Cursor<'a> {
    Borrowed(&'a Tensor),
    Owned(Tensor),
}

impl Cursor<'_> {
    fn get(&self) -> &Tensor {
        match self {
            Cursor::Borrowed(t) => t,
            Cursor::Owned(t) => t,
        }
    }

    /// Retires an owned activation back to the arena.
    fn retire(self, arena: &mut ActivationArena) {
        if let Cursor::Owned(t) = self {
            arena.give(t);
        }
    }
}

/// The planned activation-arena footprint of one `(model, resolution)` pair:
/// the exact buffer sizes a forward pass at that input shape takes from its
/// arena (in first-allocation order), derived by simulating the forward's
/// take/retire sequence against the arena's best-fit policy — ping-pong chains
/// reuse one another's buffers, residual branches extend liveness across their
/// block.
///
/// [`ArenaPlan::reserve`] pre-populates an arena so the *first* forward at the
/// planned resolution already allocates nothing; mixed-resolution serving keys
/// one plan per resolution bucket and the shared arena grows to the per-bucket
/// maxima.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArenaPlan {
    /// Element counts of the arena buffers the forward allocates, in order.
    pub buffer_elems: Vec<usize>,
    /// Peak bytes of simultaneously-live activations during the forward.
    pub peak_live_bytes: usize,
}

impl ArenaPlan {
    /// Total bytes the arena holds once warmed with this plan.
    pub fn arena_bytes(&self) -> usize {
        self.buffer_elems.iter().sum::<usize>() * std::mem::size_of::<f32>()
    }

    /// Pre-populates an arena with this plan's buffers.
    pub fn reserve(&self, arena: &mut ActivationArena) {
        arena.reserve(&self.buffer_elems);
    }
}

/// Size-only twin of [`ActivationArena`] used by the planner: same best-fit
/// reuse policy over buffer capacities, recording every allocation it cannot
/// serve from retired buffers. `tests/prepacked_forward.rs` pins that a
/// reserve-from-plan really makes the first forward allocation-free, which
/// keeps this simulation and the executor in lockstep.
struct PlanArena {
    free: Vec<usize>,
    created: Vec<usize>,
    live_elems: usize,
    peak_live_elems: usize,
}

/// A simulated taken buffer: the capacity it occupies and the logical length it
/// was taken for.
#[derive(Clone, Copy)]
struct PlanHandle {
    cap: usize,
    len: usize,
}

impl PlanArena {
    fn new() -> Self {
        PlanArena { free: Vec::new(), created: Vec::new(), live_elems: 0, peak_live_elems: 0 }
    }

    fn take(&mut self, shape: Shape) -> PlanHandle {
        let len = shape.volume();
        let position = self
            .free
            .iter()
            .enumerate()
            .filter(|(_, &cap)| cap >= len)
            .min_by_key(|(_, &cap)| cap)
            .map(|(index, _)| index);
        let cap = match position {
            Some(index) => self.free.swap_remove(index),
            None => {
                self.created.push(len);
                len
            }
        };
        self.live_elems += len;
        self.peak_live_elems = self.peak_live_elems.max(self.live_elems);
        PlanHandle { cap, len }
    }

    fn give(&mut self, handle: PlanHandle) {
        self.free.push(handle.cap);
        self.live_elems -= handle.len;
    }
}

/// An executable convolutional network.
///
/// # Examples
/// ```
/// use rescnn_models::{ModelKind, Network};
/// use rescnn_tensor::{Shape, Tensor};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = Network::new(ModelKind::ResNet18, 10, 0);
/// let input = Tensor::random_uniform(Shape::chw(3, 64, 64), 1.0, 1);
/// let logits = net.forward(&input)?;
/// assert_eq!(logits.shape().c, 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    kind: ModelKind,
    layers: Vec<LayerImpl>,
    num_classes: usize,
}

impl Network {
    /// Builds an executable network for a model family with deterministic random weights.
    pub fn new(kind: ModelKind, num_classes: usize, seed: u64) -> Self {
        Self::from_arch(&kind.arch(num_classes), seed)
    }

    /// Builds an executable network from a symbolic architecture.
    pub fn from_arch(arch: &ArchSpec, seed: u64) -> Self {
        let mut layers = Vec::with_capacity(arch.blocks.len());
        let mut next_seed = seed;
        let mut bump = || {
            next_seed =
                next_seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            next_seed
        };
        for block in &arch.blocks {
            let layer = match *block {
                BlockSpec::ConvBnAct { params, act } => {
                    LayerImpl::ConvBn(ConvBn::new(params, act, bump()))
                }
                BlockSpec::MaxPool(pool) => LayerImpl::MaxPool(pool),
                BlockSpec::BasicBlock { in_ch, out_ch, stride } => {
                    let conv1 = ConvBn::new(
                        Conv2dParams::new(in_ch, out_ch, 3, stride, 1),
                        Activation::Relu,
                        bump(),
                    );
                    let conv2 = ConvBn::new(
                        Conv2dParams::new(out_ch, out_ch, 3, 1, 1),
                        Activation::None,
                        bump(),
                    );
                    let downsample = (stride != 1 || in_ch != out_ch).then(|| {
                        ConvBn::new(
                            Conv2dParams::new(in_ch, out_ch, 1, stride, 0),
                            Activation::None,
                            bump(),
                        )
                    });
                    LayerImpl::Basic { conv1, conv2, downsample }
                }
                BlockSpec::Bottleneck { in_ch, mid_ch, out_ch, stride } => {
                    let conv1 = ConvBn::new(
                        Conv2dParams::new(in_ch, mid_ch, 1, 1, 0),
                        Activation::Relu,
                        bump(),
                    );
                    let conv2 = ConvBn::new(
                        Conv2dParams::new(mid_ch, mid_ch, 3, stride, 1),
                        Activation::Relu,
                        bump(),
                    );
                    let conv3 = ConvBn::new(
                        Conv2dParams::new(mid_ch, out_ch, 1, 1, 0),
                        Activation::None,
                        bump(),
                    );
                    let downsample = (stride != 1 || in_ch != out_ch).then(|| {
                        ConvBn::new(
                            Conv2dParams::new(in_ch, out_ch, 1, stride, 0),
                            Activation::None,
                            bump(),
                        )
                    });
                    LayerImpl::Bottleneck { conv1, conv2, conv3, downsample }
                }
                BlockSpec::InvertedResidual { in_ch, out_ch, stride, expand } => {
                    let hidden = in_ch * expand;
                    let expand_conv = (expand != 1).then(|| {
                        ConvBn::new(
                            Conv2dParams::new(in_ch, hidden, 1, 1, 0),
                            Activation::Relu6,
                            bump(),
                        )
                    });
                    let depthwise = ConvBn::new(
                        Conv2dParams::depthwise(hidden, 3, stride, 1),
                        Activation::Relu6,
                        bump(),
                    );
                    let project = ConvBn::new(
                        Conv2dParams::new(hidden, out_ch, 1, 1, 0),
                        Activation::None,
                        bump(),
                    );
                    LayerImpl::Inverted {
                        expand: expand_conv,
                        depthwise,
                        project,
                        skip: stride == 1 && in_ch == out_ch,
                    }
                }
                BlockSpec::GlobalAvgPool => LayerImpl::GlobalAvgPool,
                BlockSpec::Classifier { in_features, num_classes } => {
                    let w = Tensor::random_uniform(
                        Shape::new(1, 1, num_classes, in_features),
                        (1.0 / in_features as f32).sqrt(),
                        bump(),
                    );
                    LayerImpl::Classifier {
                        weight: PreparedGemmB::prepare_transposed(
                            w.as_slice(),
                            num_classes,
                            in_features,
                        ),
                        bias: vec![0.0; num_classes],
                        in_features,
                        out_features: num_classes,
                    }
                }
            };
            layers.push(layer);
        }
        Network { kind: arch.kind, layers, num_classes: arch.num_classes }
    }

    /// The model family this network was built from.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Number of layers (at block granularity).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    fn check_input(&self, input: &Tensor) -> Result<()> {
        if input.shape().c != 3 {
            return Err(ModelError::BadInput {
                reason: format!("expected 3 input channels, got {}", input.shape().c),
            });
        }
        Ok(())
    }

    /// Runs a forward pass, returning raw logits of shape `N × num_classes × 1 × 1`.
    ///
    /// Executes prepacked + fused out of the calling thread's persistent
    /// [`ActivationArena`]: after a warm-up pass per input resolution, steady-state
    /// forwards perform zero heap allocations apart from the returned logits
    /// vector. Results are bitwise identical to
    /// [`forward_reference`](Self::forward_reference).
    ///
    /// # Errors
    /// Returns [`ModelError::BadInput`] if the input does not have three channels, or a
    /// kernel error if the resolution is too small for the downsampling schedule.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        with_thread_arena(|arena| self.forward_with_arena(input, arena))
    }

    /// [`forward`](Self::forward) against a caller-owned arena (e.g. one arena
    /// per resolution bucket in a serving layer).
    ///
    /// # Errors
    /// See [`Network::forward`].
    pub fn forward_with_arena(
        &self,
        input: &Tensor,
        arena: &mut ActivationArena,
    ) -> Result<Tensor> {
        self.check_input(input)?;
        let mut cur = Cursor::Borrowed(input);
        for layer in &self.layers {
            let next = match layer {
                LayerImpl::ConvBn(conv) => conv.forward(cur.get(), arena)?,
                LayerImpl::MaxPool(pool) => {
                    let x = cur.get();
                    let mut out = arena.take(pool.output_shape(x.shape())?);
                    max_pool2d_into(x, pool, &mut out)?;
                    out
                }
                LayerImpl::Basic { conv1, conv2, downsample } => {
                    let x = cur.get();
                    // Cache-resident chain: conv1's tiles feed conv2's input
                    // transform through a ring band instead of materializing
                    // the intermediate feature map (bitwise identical).
                    if let Some(plan) = chain_plan(&conv1.prepared, &conv2.prepared, x.shape()) {
                        match downsample {
                            Some(d) => {
                                let skip = d.forward(x, arena)?;
                                let out = forward_chained(
                                    conv1,
                                    conv2,
                                    x,
                                    Some(&skip),
                                    FusedActivation::Relu,
                                    &plan,
                                    arena,
                                )?;
                                arena.give(skip);
                                out
                            }
                            None => forward_chained(
                                conv1,
                                conv2,
                                x,
                                Some(x),
                                FusedActivation::Relu,
                                &plan,
                                arena,
                            )?,
                        }
                    } else {
                        let a = conv1.forward(x, arena)?;
                        let out = match downsample {
                            Some(d) => {
                                let skip = d.forward(x, arena)?;
                                let out = conv2.forward_tail(
                                    &a,
                                    Some(&skip),
                                    FusedActivation::Relu,
                                    arena,
                                )?;
                                arena.give(skip);
                                out
                            }
                            None => {
                                conv2.forward_tail(&a, Some(x), FusedActivation::Relu, arena)?
                            }
                        };
                        arena.give(a);
                        out
                    }
                }
                LayerImpl::Bottleneck { conv1, conv2, conv3, downsample } => {
                    let x = cur.get();
                    let a = conv1.forward(x, arena)?;
                    // Chain the 3×3 producer into the 1×1 projection: each band
                    // of conv2 output is consumed by conv3's GEMM while still
                    // cache-resident.
                    if let Some(plan) = chain_plan(&conv2.prepared, &conv3.prepared, a.shape()) {
                        let out = match downsample {
                            Some(d) => {
                                let skip = d.forward(x, arena)?;
                                let out = forward_chained(
                                    conv2,
                                    conv3,
                                    &a,
                                    Some(&skip),
                                    FusedActivation::Relu,
                                    &plan,
                                    arena,
                                )?;
                                arena.give(skip);
                                out
                            }
                            None => forward_chained(
                                conv2,
                                conv3,
                                &a,
                                Some(x),
                                FusedActivation::Relu,
                                &plan,
                                arena,
                            )?,
                        };
                        arena.give(a);
                        out
                    } else {
                        let b = conv2.forward(&a, arena)?;
                        arena.give(a);
                        let out = match downsample {
                            Some(d) => {
                                let skip = d.forward(x, arena)?;
                                let out = conv3.forward_tail(
                                    &b,
                                    Some(&skip),
                                    FusedActivation::Relu,
                                    arena,
                                )?;
                                arena.give(skip);
                                out
                            }
                            None => {
                                conv3.forward_tail(&b, Some(x), FusedActivation::Relu, arena)?
                            }
                        };
                        arena.give(b);
                        out
                    }
                }
                LayerImpl::Inverted { expand, depthwise, project, skip } => {
                    let x = cur.get();
                    let t = match expand {
                        Some(e) => {
                            let hidden = e.forward(x, arena)?;
                            let t = depthwise.forward(&hidden, arena)?;
                            arena.give(hidden);
                            t
                        }
                        None => depthwise.forward(x, arena)?,
                    };
                    let out = if *skip {
                        project.forward_tail(&t, Some(x), FusedActivation::None, arena)?
                    } else {
                        project.forward(&t, arena)?
                    };
                    arena.give(t);
                    out
                }
                LayerImpl::GlobalAvgPool => {
                    let x = cur.get();
                    let shape = Shape::new(x.shape().n, x.shape().c, 1, 1);
                    let mut out = arena.take(shape);
                    global_avg_pool_into(x, &mut out)?;
                    out
                }
                LayerImpl::Classifier { weight, bias, in_features, out_features } => {
                    let x = cur.get();
                    if x.shape().c != *in_features || x.shape().h != 1 || x.shape().w != 1 {
                        return Err(ModelError::BadInput {
                            reason: format!(
                                "classifier expected {}x1x1 features, got {}",
                                in_features,
                                x.shape()
                            ),
                        });
                    }
                    // The logits leave the forward (caller owns them), so they are
                    // a fresh — tiny — allocation rather than an arena buffer.
                    let mut out = Tensor::zeros(Shape::new(x.shape().n, *out_features, 1, 1));
                    linear_prepared_into(x, weight, Some(bias), &mut out)?;
                    out
                }
            };
            cur.retire(arena);
            cur = Cursor::Owned(next);
        }
        match cur {
            Cursor::Owned(t) => Ok(t),
            Cursor::Borrowed(t) => Ok(t.clone()),
        }
    }

    /// The PR-4-era execution *strategy*, kept as the measured baseline (see
    /// the `forward_prepacked` bench group) and the parity target: per-call
    /// weight packing, separate activation / residual-add passes, a fresh
    /// tensor per layer. Bitwise identical to [`forward`](Self::forward) —
    /// pinned by `tests/prepacked_forward.rs` across thread counts.
    ///
    /// It is not a bit-exact historical replay: it shares this PR's
    /// kernel-level improvements (the prepacked Winograd `U` bank, non-zeroing
    /// kernel scratch, the GEMM classifier), so A/B against `forward` isolates
    /// exactly the prepack + fuse + arena contribution; the full delta against
    /// the PR 4 build is the recorded ROADMAP table.
    ///
    /// # Errors
    /// See [`Network::forward`].
    pub fn forward_reference(&self, input: &Tensor) -> Result<Tensor> {
        self.check_input(input)?;
        let mut x = input.clone();
        for layer in &self.layers {
            x = match layer {
                LayerImpl::ConvBn(conv) => conv.forward_reference(&x)?,
                LayerImpl::MaxPool(pool) => rescnn_tensor::max_pool2d(&x, pool)?,
                LayerImpl::Basic { conv1, conv2, downsample } => {
                    let mut out = conv2.forward_reference(&conv1.forward_reference(&x)?)?;
                    match downsample {
                        Some(d) => add_relu_in_place(&mut out, &d.forward_reference(&x)?)?,
                        None => add_relu_in_place(&mut out, &x)?,
                    }
                    out
                }
                LayerImpl::Bottleneck { conv1, conv2, conv3, downsample } => {
                    let mut out = conv3.forward_reference(
                        &conv2.forward_reference(&conv1.forward_reference(&x)?)?,
                    )?;
                    match downsample {
                        Some(d) => add_relu_in_place(&mut out, &d.forward_reference(&x)?)?,
                        None => add_relu_in_place(&mut out, &x)?,
                    }
                    out
                }
                LayerImpl::Inverted { expand, depthwise, project, skip } => {
                    let mut out = match expand {
                        Some(e) => project.forward_reference(
                            &depthwise.forward_reference(&e.forward_reference(&x)?)?,
                        )?,
                        None => project.forward_reference(&depthwise.forward_reference(&x)?)?,
                    };
                    if *skip {
                        out.add_assign(&x)?;
                    }
                    out
                }
                LayerImpl::GlobalAvgPool => rescnn_tensor::global_avg_pool(&x),
                LayerImpl::Classifier { weight, bias, in_features, out_features } => {
                    if x.shape().c != *in_features || x.shape().h != 1 || x.shape().w != 1 {
                        return Err(ModelError::BadInput {
                            reason: format!(
                                "classifier expected {}x1x1 features, got {}",
                                in_features,
                                x.shape()
                            ),
                        });
                    }
                    let _ = out_features;
                    linear_prepared(&x, weight, Some(bias))?
                }
            };
        }
        Ok(x)
    }

    /// Records per-convolution activation ranges for the int8 arm: feeds
    /// `input` through the reference forward, observing each prepared
    /// convolution's *input* min/max and widening any previously recorded
    /// range — call once per calibration sample. Quantized forwards then read
    /// the stored range instead of re-scanning each request's activations,
    /// making the quantization grid (and therefore the output bits) a
    /// deployment property rather than a per-request one.
    ///
    /// # Errors
    /// See [`Network::forward`].
    pub fn calibrate_int8_ranges(&mut self, input: &Tensor) -> Result<()> {
        self.check_input(input)?;
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = match layer {
                LayerImpl::ConvBn(conv) => {
                    conv.observe_int8_range(&x);
                    conv.forward_reference(&x)?
                }
                LayerImpl::MaxPool(pool) => rescnn_tensor::max_pool2d(&x, pool)?,
                LayerImpl::Basic { conv1, conv2, downsample } => {
                    conv1.observe_int8_range(&x);
                    let mid = conv1.forward_reference(&x)?;
                    conv2.observe_int8_range(&mid);
                    let mut out = conv2.forward_reference(&mid)?;
                    match downsample {
                        Some(d) => {
                            d.observe_int8_range(&x);
                            add_relu_in_place(&mut out, &d.forward_reference(&x)?)?;
                        }
                        None => add_relu_in_place(&mut out, &x)?,
                    }
                    out
                }
                LayerImpl::Bottleneck { conv1, conv2, conv3, downsample } => {
                    conv1.observe_int8_range(&x);
                    let mid1 = conv1.forward_reference(&x)?;
                    conv2.observe_int8_range(&mid1);
                    let mid2 = conv2.forward_reference(&mid1)?;
                    conv3.observe_int8_range(&mid2);
                    let mut out = conv3.forward_reference(&mid2)?;
                    match downsample {
                        Some(d) => {
                            d.observe_int8_range(&x);
                            add_relu_in_place(&mut out, &d.forward_reference(&x)?)?;
                        }
                        None => add_relu_in_place(&mut out, &x)?,
                    }
                    out
                }
                LayerImpl::Inverted { expand, depthwise, project, skip } => {
                    let mid1 = match expand {
                        Some(e) => {
                            e.observe_int8_range(&x);
                            e.forward_reference(&x)?
                        }
                        None => x.clone(),
                    };
                    depthwise.observe_int8_range(&mid1);
                    let mid2 = depthwise.forward_reference(&mid1)?;
                    project.observe_int8_range(&mid2);
                    let mut out = project.forward_reference(&mid2)?;
                    if *skip {
                        out.add_assign(&x)?;
                    }
                    out
                }
                LayerImpl::GlobalAvgPool => rescnn_tensor::global_avg_pool(&x),
                // Nothing after the classifier consumes a convolution input.
                LayerImpl::Classifier { .. } => break,
            };
        }
        Ok(())
    }

    /// Plans the activation-arena footprint of a forward pass at one input
    /// shape: simulates the exact take/retire sequence
    /// [`forward_with_arena`](Self::forward_with_arena) performs and returns
    /// the buffer sizes it allocates plus the peak live-activation bytes.
    ///
    /// # Errors
    /// Returns an error if the resolution is too small for the downsampling
    /// schedule.
    pub fn arena_plan(&self, input: Shape) -> Result<ArenaPlan> {
        let mut arena = PlanArena::new();
        let mut cur: Option<PlanHandle> = None; // handle of the owned cursor, if any
        let mut shape = input;
        for layer in &self.layers {
            let (next_shape, next_handle) = match layer {
                LayerImpl::ConvBn(conv) => {
                    let os = conv.output_shape(shape)?;
                    (os, Some(arena.take(os)))
                }
                LayerImpl::MaxPool(pool) => {
                    let os = pool.output_shape(shape)?;
                    (os, Some(arena.take(os)))
                }
                LayerImpl::Basic { conv1, conv2, downsample } => {
                    let a_shape = conv1.output_shape(shape)?;
                    let os = conv2.output_shape(a_shape)?;
                    // Mirror the forward's chain decision exactly (same
                    // predicate, same take/give order), so warmed chained
                    // forwards stay allocation-free.
                    if let Some(plan) = chain_plan(&conv1.prepared, &conv2.prepared, shape) {
                        let out = match downsample {
                            Some(d) => {
                                let skip = arena.take(d.output_shape(shape)?);
                                let band = arena.take(band_shape(&plan));
                                let out = arena.take(os);
                                arena.give(band);
                                arena.give(skip);
                                out
                            }
                            None => {
                                let band = arena.take(band_shape(&plan));
                                let out = arena.take(os);
                                arena.give(band);
                                out
                            }
                        };
                        (os, Some(out))
                    } else {
                        let a = arena.take(a_shape);
                        let out = match downsample {
                            Some(d) => {
                                let skip = arena.take(d.output_shape(shape)?);
                                let out = arena.take(os);
                                arena.give(skip);
                                out
                            }
                            None => arena.take(os),
                        };
                        arena.give(a);
                        (os, Some(out))
                    }
                }
                LayerImpl::Bottleneck { conv1, conv2, conv3, downsample } => {
                    let a_shape = conv1.output_shape(shape)?;
                    let a = arena.take(a_shape);
                    let b_shape = conv2.output_shape(a_shape)?;
                    let os = conv3.output_shape(b_shape)?;
                    if let Some(plan) = chain_plan(&conv2.prepared, &conv3.prepared, a_shape) {
                        let out = match downsample {
                            Some(d) => {
                                let skip = arena.take(d.output_shape(shape)?);
                                let band = arena.take(band_shape(&plan));
                                let out = arena.take(os);
                                arena.give(band);
                                arena.give(skip);
                                out
                            }
                            None => {
                                let band = arena.take(band_shape(&plan));
                                let out = arena.take(os);
                                arena.give(band);
                                out
                            }
                        };
                        arena.give(a);
                        (os, Some(out))
                    } else {
                        let b = arena.take(b_shape);
                        arena.give(a);
                        let out = match downsample {
                            Some(d) => {
                                let skip = arena.take(d.output_shape(shape)?);
                                let out = arena.take(os);
                                arena.give(skip);
                                out
                            }
                            None => arena.take(os),
                        };
                        arena.give(b);
                        (os, Some(out))
                    }
                }
                LayerImpl::Inverted { expand, depthwise, project, .. } => {
                    let (t_shape, t) = match expand {
                        Some(e) => {
                            let h_shape = e.output_shape(shape)?;
                            let h = arena.take(h_shape);
                            let t_shape = depthwise.output_shape(h_shape)?;
                            let t = arena.take(t_shape);
                            arena.give(h);
                            (t_shape, t)
                        }
                        None => {
                            let t_shape = depthwise.output_shape(shape)?;
                            (t_shape, arena.take(t_shape))
                        }
                    };
                    let os = project.output_shape(t_shape)?;
                    let out = arena.take(os);
                    arena.give(t);
                    (os, Some(out))
                }
                LayerImpl::GlobalAvgPool => {
                    let os = Shape::new(shape.n, shape.c, 1, 1);
                    (os, Some(arena.take(os)))
                }
                LayerImpl::Classifier { out_features, .. } => {
                    // Fresh (non-arena) allocation; nothing to simulate.
                    (Shape::new(shape.n, *out_features, 1, 1), None)
                }
            };
            if let Some(handle) = cur.take() {
                arena.give(handle);
            }
            cur = next_handle;
            shape = next_shape;
        }
        Ok(ArenaPlan {
            buffer_elems: arena.created,
            peak_live_bytes: arena.peak_live_elems * std::mem::size_of::<f32>(),
        })
    }

    /// Plans and pre-populates the **calling thread's** arena for a resolution,
    /// so even the first forward at that input shape allocates nothing on this
    /// thread (benchmarks, sequential serving). Batched execution on the worker
    /// pool uses each worker's own thread-local arena, which this cannot reach —
    /// workers warm themselves on their first sample per resolution and stay
    /// allocation-free from then on (their arenas persist across dispatches).
    /// For caller-managed warming across executors, use
    /// [`arena_plan`](Self::arena_plan) + [`ArenaPlan::reserve`] on an arena you
    /// pass to [`forward_with_arena`](Self::forward_with_arena).
    ///
    /// # Errors
    /// See [`Network::arena_plan`].
    pub fn warm_thread_arena(&self, input: Shape) -> Result<ArenaPlan> {
        let plan = self.arena_plan(input)?;
        with_thread_arena(|arena| plan.reserve(arena));
        Ok(plan)
    }

    /// Runs a forward pass and returns per-class probabilities (softmax of the logits).
    ///
    /// # Errors
    /// See [`Network::forward`].
    pub fn predict_probabilities(&self, input: &Tensor) -> Result<Tensor> {
        let logits = self.forward(input)?;
        Ok(softmax(&logits)?)
    }

    /// Runs a forward pass and returns the arg-max class index for a batch-1 input.
    ///
    /// # Errors
    /// See [`Network::forward`].
    pub fn predict_class(&self, input: &Tensor) -> Result<usize> {
        let logits = self.forward(input)?;
        Ok(logits.argmax().unwrap_or(0))
    }

    /// Runs forward passes for a batch of independent inputs (which may have
    /// heterogeneous resolutions), returning per-input logits in order.
    ///
    /// The engine's thread budget is split between sample-level and kernel-level
    /// parallelism with [`rescnn_tensor::split_parallelism`]: a batch with at
    /// least as many inputs as threads runs one sample per pool worker (each
    /// sample's kernels single-threaded), a smaller batch runs samples
    /// sequentially with fully parallel kernels. Either way results are bitwise
    /// identical to calling [`forward`](Self::forward) per input — the caller's
    /// [`rescnn_tensor::EngineContext`] (e.g. an algorithm override) is carried
    /// onto the worker threads. Inputs are borrowed straight into the first
    /// layer (no per-request clone), and each executing thread's persistent
    /// arena keeps warm batches allocation-free.
    ///
    /// # Errors
    /// See [`Network::forward`]; the first failing input (in batch order) is
    /// reported.
    pub fn forward_batch(&self, inputs: &[Tensor]) -> Result<Vec<Tensor>> {
        rescnn_tensor::parallel::parallel_map_indexed(inputs.len(), num_threads(), |index| {
            self.forward(&inputs[index])
        })
        .into_iter()
        .collect()
    }

    /// Runs [`forward_batch`](Self::forward_batch) and returns the arg-max class
    /// index per input.
    ///
    /// # Errors
    /// See [`Network::forward_batch`].
    pub fn predict_batch(&self, inputs: &[Tensor]) -> Result<Vec<usize>> {
        let logits = self.forward_batch(inputs)?;
        Ok(logits.into_iter().map(|l| l.argmax().unwrap_or(0)).collect())
    }
}

/// A deliberately tiny CNN used in tests and examples where running a full ResNet would be
/// wastefully slow. It follows the same structural conventions (stem, stride-2 stages,
/// global pooling, linear head) and is resolution-agnostic.
#[derive(Debug, Clone)]
pub struct TinyCnn {
    stem: ConvBn,
    stage1: ConvBn,
    stage2: ConvBn,
    head_weight: Vec<f32>,
    head_bias: Vec<f32>,
    num_classes: usize,
}

impl TinyCnn {
    /// Builds a tiny CNN with deterministic random weights.
    pub fn new(num_classes: usize, seed: u64) -> Self {
        TinyCnn {
            stem: ConvBn::new(Conv2dParams::new(3, 8, 3, 2, 1), Activation::Relu, seed ^ 1),
            stage1: ConvBn::new(Conv2dParams::new(8, 16, 3, 2, 1), Activation::Relu, seed ^ 2),
            stage2: ConvBn::new(Conv2dParams::new(16, 32, 3, 2, 1), Activation::Relu, seed ^ 3),
            head_weight: Tensor::random_uniform(Shape::new(1, 1, num_classes, 32), 0.2, seed ^ 4)
                .into_vec(),
            head_bias: vec![0.0; num_classes],
            num_classes,
        }
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Forward pass returning logits.
    ///
    /// # Errors
    /// Returns a kernel error if the input is smaller than the downsampling schedule allows.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        with_thread_arena(|arena| {
            let x = self.stem.forward(input, arena)?;
            let y = self.stage1.forward(&x, arena)?;
            arena.give(x);
            let z = self.stage2.forward(&y, arena)?;
            arena.give(y);
            let pooled = avg_pool2d(
                &z,
                &Pool2dParams::new(z.shape().h.min(z.shape().w), z.shape().h.min(z.shape().w), 0),
            )?;
            arena.give(z);
            let pooled = rescnn_tensor::global_avg_pool(&pooled);
            Ok(rescnn_tensor::linear(
                &pooled,
                &self.head_weight,
                Some(&self.head_bias),
                self.num_classes,
            )?)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_cnn_forward_shapes() {
        let net = TinyCnn::new(7, 3);
        assert_eq!(net.num_classes(), 7);
        for res in [16usize, 24, 32, 48] {
            let input = Tensor::random_uniform(Shape::chw(3, res, res), 1.0, res as u64);
            let out = net.forward(&input).unwrap();
            assert_eq!(out.shape(), Shape::new(1, 7, 1, 1));
            assert!(!out.has_non_finite());
        }
    }

    #[test]
    fn resnet18_forward_is_resolution_agnostic() {
        let net = Network::new(ModelKind::ResNet18, 5, 0);
        assert_eq!(net.kind(), ModelKind::ResNet18);
        assert_eq!(net.num_classes(), 5);
        assert!(net.num_layers() > 8);
        for res in [32usize, 56, 64] {
            let input = Tensor::random_uniform(Shape::chw(3, res, res), 1.0, 9);
            let logits = net.forward(&input).unwrap();
            assert_eq!(logits.shape(), Shape::new(1, 5, 1, 1));
            assert!(!logits.has_non_finite(), "non-finite logits at {res}");
        }
    }

    #[test]
    fn resnet50_and_mobilenet_forward_small_input() {
        let r50 = Network::new(ModelKind::ResNet50, 4, 1);
        let input = Tensor::random_uniform(Shape::chw(3, 32, 32), 1.0, 2);
        let out = r50.forward(&input).unwrap();
        assert_eq!(out.shape().c, 4);
        assert!(!out.has_non_finite());

        let mb2 = Network::new(ModelKind::MobileNetV2, 4, 1);
        let out = mb2.forward(&input).unwrap();
        assert_eq!(out.shape().c, 4);
        assert!(!out.has_non_finite());
    }

    #[test]
    fn forward_is_deterministic_per_seed() {
        let a = Network::new(ModelKind::ResNet18, 3, 7);
        let b = Network::new(ModelKind::ResNet18, 3, 7);
        let c = Network::new(ModelKind::ResNet18, 3, 8);
        let input = Tensor::random_uniform(Shape::chw(3, 40, 40), 1.0, 5);
        let out_a = a.forward(&input).unwrap();
        let out_b = b.forward(&input).unwrap();
        let out_c = c.forward(&input).unwrap();
        assert!(out_a.max_abs_diff(&out_b).unwrap() < 1e-6);
        assert!(out_a.max_abs_diff(&out_c).unwrap() > 1e-6);
    }

    #[test]
    fn prepared_forward_matches_reference_bitwise() {
        // The tentpole contract: prepacked weights + fused epilogues + arena
        // execution must be bitwise identical to the PR-4-era reference path,
        // for every block family (basic, bottleneck, inverted residual).
        for kind in [ModelKind::ResNet18, ModelKind::ResNet50, ModelKind::MobileNetV2] {
            let net = Network::new(kind, 4, 13);
            let input = Tensor::random_uniform(Shape::chw(3, 48, 48), 1.0, 3);
            let fast = net.forward(&input).unwrap();
            let reference = net.forward_reference(&input).unwrap();
            assert_eq!(
                fast.as_slice(),
                reference.as_slice(),
                "{kind} prepared forward diverged from the reference path"
            );
            // Repeat (warm arena) must also be identical.
            let again = net.forward(&input).unwrap();
            assert_eq!(fast.as_slice(), again.as_slice());
        }
    }

    #[test]
    fn arena_plan_shapes_are_sane() {
        let net = Network::new(ModelKind::ResNet18, 5, 2);
        let plan = net.arena_plan(Shape::chw(3, 64, 64)).unwrap();
        assert!(!plan.buffer_elems.is_empty());
        assert!(plan.arena_bytes() > 0);
        assert!(plan.peak_live_bytes > 0);
        // Ping-pong reuse must keep the buffer count far below the layer count.
        assert!(
            plan.buffer_elems.len() < net.num_layers(),
            "planner found no reuse: {} buffers for {} layers",
            plan.buffer_elems.len(),
            net.num_layers()
        );
        // A larger resolution plans a strictly larger arena.
        let large = net.arena_plan(Shape::chw(3, 128, 128)).unwrap();
        assert!(large.arena_bytes() > plan.arena_bytes());
        assert!(net.arena_plan(Shape::chw(3, 0, 0)).is_err());
    }

    #[test]
    fn batched_forward_matches_per_sample_bitwise() {
        let net = Network::new(ModelKind::ResNet18, 4, 11);
        // Mixed-resolution batch, larger than typical thread counts so the outer
        // (sample-parallel) path is exercised on multi-core hosts.
        let inputs: Vec<Tensor> = [24usize, 32, 40, 24, 56, 32, 48, 40, 24, 32]
            .iter()
            .enumerate()
            .map(|(i, &res)| Tensor::random_uniform(Shape::chw(3, res, res), 1.0, i as u64))
            .collect();
        let batched = net.forward_batch(&inputs).unwrap();
        assert_eq!(batched.len(), inputs.len());
        for (input, batched_logits) in inputs.iter().zip(&batched) {
            let solo = net.forward(input).unwrap();
            assert_eq!(
                solo.as_slice(),
                batched_logits.as_slice(),
                "batched forward must be bitwise identical to per-sample forward"
            );
        }
        let classes = net.predict_batch(&inputs).unwrap();
        assert_eq!(classes.len(), inputs.len());
        assert!(classes.iter().all(|&c| c < 4));
    }

    #[test]
    fn batched_forward_carries_caller_context_to_workers() {
        use rescnn_tensor::{ConvAlgo, EngineContext};
        // Regression: the outer (pool-worker) path used to rebuild the task
        // context from scratch, silently dropping a caller-installed algorithm
        // override for samples that landed on worker threads.
        let net = Network::new(ModelKind::ResNet18, 3, 5);
        let inputs: Vec<Tensor> =
            (0..6).map(|i| Tensor::random_uniform(Shape::chw(3, 24, 24), 1.0, i as u64)).collect();
        let context = EngineContext::new().with_threads(3).with_algo(ConvAlgo::Direct);
        let expected: Vec<Tensor> =
            context.scope(|| inputs.iter().map(|x| net.forward(x).unwrap()).collect());
        let batched = context.scope(|| net.forward_batch(&inputs).unwrap());
        for (solo, batch) in expected.iter().zip(&batched) {
            assert_eq!(
                solo.as_slice(),
                batch.as_slice(),
                "caller context must apply identically on every batch slot"
            );
        }
    }

    #[test]
    fn batched_forward_reports_first_bad_input() {
        let net = Network::new(ModelKind::ResNet18, 3, 0);
        let inputs = vec![
            Tensor::random_uniform(Shape::chw(3, 32, 32), 1.0, 1),
            Tensor::random_uniform(Shape::chw(1, 32, 32), 1.0, 2),
        ];
        assert!(net.forward_batch(&inputs).is_err());
        assert!(net.forward_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn probabilities_and_class_prediction() {
        let net = Network::new(ModelKind::ResNet18, 6, 2);
        let input = Tensor::random_uniform(Shape::chw(3, 48, 48), 1.0, 3);
        let probs = net.predict_probabilities(&input).unwrap();
        let sum: f32 = probs.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        let class = net.predict_class(&input).unwrap();
        assert!(class < 6);
    }

    #[test]
    fn winograd_forward_matches_default_within_tolerance() {
        use rescnn_tensor::EngineContext;
        // Forcing the Winograd arm routes every dense stride-1 3×3 layer through
        // the cached filter-transform path (with fused bias + activation);
        // ineligible shapes keep their engine fast paths. Winograd reassociates
        // arithmetic, so the contract is elementwise tolerance, not bitwise
        // equality — and the cache must make repeat passes identical.
        let net = Network::new(ModelKind::ResNet18, 5, 21);
        let input = Tensor::random_uniform(Shape::chw(3, 64, 64), 1.0, 4);
        let default_out = net.forward(&input).unwrap();
        let wino_context = EngineContext::new().with_algo(ConvAlgo::Winograd);
        let wino_out = wino_context.scope(|| net.forward(&input).unwrap());
        assert!(
            default_out.max_abs_diff(&wino_out).unwrap() < 1e-2,
            "winograd forward drifted: {}",
            default_out.max_abs_diff(&wino_out).unwrap()
        );
        let wino_again = wino_context.scope(|| net.forward(&input).unwrap());
        assert_eq!(
            wino_out.as_slice(),
            wino_again.as_slice(),
            "cached filter transforms must make repeat winograd passes bitwise identical"
        );
    }

    #[test]
    fn wrong_channel_count_is_rejected() {
        let net = Network::new(ModelKind::ResNet18, 3, 0);
        let input = Tensor::zeros(Shape::chw(1, 64, 64));
        assert!(matches!(net.forward(&input), Err(ModelError::BadInput { .. })));
        assert!(matches!(net.forward_reference(&input), Err(ModelError::BadInput { .. })));
    }

    #[test]
    fn degenerate_small_input_still_produces_logits() {
        // Padding plus global average pooling make the networks tolerant of absurdly small
        // inputs; the result is meaningless but must be well-formed and finite.
        let net = Network::new(ModelKind::ResNet50, 3, 0);
        let input = Tensor::zeros(Shape::chw(3, 2, 2));
        let out = net.forward(&input).unwrap();
        assert_eq!(out.shape().c, 3);
        assert!(!out.has_non_finite());
    }
}
