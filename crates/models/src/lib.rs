//! # rescnn-models
//!
//! Convolutional network architectures used by the paper's evaluation — ResNet-18,
//! ResNet-50 (backbones) and MobileNetV2 (scale model) — in two forms:
//!
//! * [`ArchSpec`], a symbolic description supporting per-resolution FLOP accounting and
//!   convolution-layer enumeration (what the kernel cost model and the Table I / Figure 7
//!   harnesses consume), and
//! * [`Network`], an executable forward pass built on `rescnn-tensor` kernels with
//!   deterministic random weights (what the examples and wall-clock benchmarks run).
//!
//! # Examples
//! ```
//! use rescnn_models::ModelKind;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let arch = ModelKind::ResNet18.arch(1000);
//! let g224 = arch.gflops(224)?;
//! let g112 = arch.gflops(112)?;
//! // Compute cost scales roughly quadratically with resolution (paper Table I).
//! assert!(g224 / g112 > 3.0 && g224 / g112 < 4.5);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod arch;
mod error;
mod nn;

pub use arch::{
    mobilenet_v2_arch, resnet18_arch, resnet50_arch, Activation, ArchSpec, BlockSpec,
    ConvLayerShape, ModelKind,
};
pub use error::{ModelError, Result};
pub use nn::{ArenaPlan, Network, TinyCnn};

/// The seven inference resolutions evaluated throughout the paper.
pub const PAPER_RESOLUTIONS: [usize; 7] = [112, 168, 224, 280, 336, 392, 448];

/// Commonly used items, intended for glob import.
pub mod prelude {
    pub use crate::{ArchSpec, ConvLayerShape, ModelError, ModelKind, Network, PAPER_RESOLUTIONS};
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn flops_monotone_in_resolution(res_a in 32usize..256, delta in 8usize..128) {
            let arch = ModelKind::ResNet18.arch(100);
            let lo = arch.flops(res_a).unwrap();
            let hi = arch.flops(res_a + delta).unwrap();
            prop_assert!(hi > lo);
        }

        #[test]
        fn conv_layer_flops_sum_is_consistent(res in 64usize..320) {
            for kind in ModelKind::ALL {
                let arch = kind.arch(10);
                let layers = arch.conv_layers(res).unwrap();
                let sum: u64 = layers.iter().map(|l| l.flops()).sum();
                let total = arch.flops(res).unwrap();
                prop_assert!(total >= sum);
                // Classifier contribution is tiny relative to convolutions.
                let classifier_share = ((total - sum) as f64) / (total as f64);
                prop_assert!(classifier_share < 0.05);
            }
        }

        #[test]
        fn param_count_independent_of_resolution(classes in 2usize..50) {
            let a = ModelKind::MobileNetV2.arch(classes);
            let p1 = a.param_count();
            prop_assert!(p1 > 1_000_000);
        }
    }
}
