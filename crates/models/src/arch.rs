//! Symbolic architecture descriptions.
//!
//! The experiment harness needs to reason about models *without* instantiating weights:
//! per-resolution FLOP counts (Table I, Figures 8/9), the list of convolution layer shapes
//! to feed the kernel cost model and autotuner (Figure 7, Table II), and parameter counts.
//! [`ArchSpec`] provides exactly that; the executable counterpart lives in
//! [`crate::nn`].

use serde::{Deserialize, Serialize};

use rescnn_tensor::{Conv2dParams, Pool2dParams, Shape};

use crate::error::{ModelError, Result};

/// The model families used in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// ResNet-18 backbone.
    ResNet18,
    /// ResNet-50 backbone.
    ResNet50,
    /// MobileNetV2, used as the lightweight scale model.
    MobileNetV2,
}

impl ModelKind {
    /// All model kinds.
    pub const ALL: [ModelKind; 3] =
        [ModelKind::ResNet18, ModelKind::ResNet50, ModelKind::MobileNetV2];

    /// Human-readable name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::ResNet18 => "ResNet-18",
            ModelKind::ResNet50 => "ResNet-50",
            ModelKind::MobileNetV2 => "MobileNetV2",
        }
    }

    /// Builds the symbolic architecture with the given number of output classes.
    pub fn arch(&self, num_classes: usize) -> ArchSpec {
        match self {
            ModelKind::ResNet18 => resnet18_arch(num_classes),
            ModelKind::ResNet50 => resnet50_arch(num_classes),
            ModelKind::MobileNetV2 => mobilenet_v2_arch(num_classes),
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Activation applied after a convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// No activation (linear).
    None,
    /// Standard ReLU.
    Relu,
    /// ReLU clamped at 6 (MobileNet convention).
    Relu6,
}

/// One block of a network, at the granularity the original architectures are described in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockSpec {
    /// A plain convolution + batch-norm + activation.
    ConvBnAct {
        /// Convolution parameters.
        params: Conv2dParams,
        /// Post-convolution activation.
        act: Activation,
    },
    /// Max pooling.
    MaxPool(Pool2dParams),
    /// ResNet basic block: two 3×3 convolutions with an identity (or 1×1 projection) skip.
    BasicBlock {
        /// Input channels.
        in_ch: usize,
        /// Output channels.
        out_ch: usize,
        /// Stride of the first convolution.
        stride: usize,
    },
    /// ResNet bottleneck block: 1×1 reduce, 3×3, 1×1 expand with a skip connection.
    Bottleneck {
        /// Input channels.
        in_ch: usize,
        /// Mid (bottleneck) channels.
        mid_ch: usize,
        /// Output channels (`4 × mid_ch` in standard ResNets).
        out_ch: usize,
        /// Stride of the 3×3 convolution.
        stride: usize,
    },
    /// MobileNetV2 inverted residual: 1×1 expand, 3×3 depthwise, 1×1 project.
    InvertedResidual {
        /// Input channels.
        in_ch: usize,
        /// Output channels.
        out_ch: usize,
        /// Stride of the depthwise convolution.
        stride: usize,
        /// Expansion factor.
        expand: usize,
    },
    /// Global average pooling over the spatial dimensions.
    GlobalAvgPool,
    /// Final fully-connected classifier.
    Classifier {
        /// Input feature count.
        in_features: usize,
        /// Number of classes.
        num_classes: usize,
    },
}

/// The shape of one convolution layer instantiated at a concrete resolution; the unit of
/// work the kernel cost model and autotuner operate on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvLayerShape {
    /// Convolution parameters.
    pub params: Conv2dParams,
    /// Input activation shape (batch 1).
    pub input: Shape,
}

impl ConvLayerShape {
    /// MACs for this layer.
    pub fn macs(&self) -> u64 {
        self.params.macs(self.input).unwrap_or(0)
    }

    /// FLOPs for this layer, using the paper's convention (Table I) of counting one
    /// multiply–accumulate as one FLOP.
    pub fn flops(&self) -> u64 {
        self.macs()
    }
}

/// A full symbolic architecture.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArchSpec {
    /// Model family this spec was generated from.
    pub kind: ModelKind,
    /// Ordered blocks.
    pub blocks: Vec<BlockSpec>,
    /// Number of output classes.
    pub num_classes: usize,
}

impl ArchSpec {
    /// Walks the architecture at a given square input resolution, returning every
    /// convolution layer with its concrete input shape.
    ///
    /// # Errors
    /// Returns [`ModelError::ResolutionTooSmall`] if the resolution collapses to zero
    /// spatial extent anywhere in the network.
    pub fn conv_layers(&self, resolution: usize) -> Result<Vec<ConvLayerShape>> {
        let mut layers = Vec::new();
        self.walk(resolution, |layer, _| layers.push(layer))?;
        Ok(layers)
    }

    /// Total FLOPs of convolution and linear layers at a resolution, using the paper's
    /// convention (Table I) of counting one multiply–accumulate as one FLOP.
    ///
    /// # Errors
    /// Returns an error if the resolution is too small for the architecture.
    pub fn flops(&self, resolution: usize) -> Result<u64> {
        let mut total = 0u64;
        let linear = self.walk(resolution, |layer, _| total += layer.flops())?;
        Ok(total + linear)
    }

    /// Total FLOPs expressed in GFLOPs.
    ///
    /// # Errors
    /// Returns an error if the resolution is too small for the architecture.
    pub fn gflops(&self, resolution: usize) -> Result<f64> {
        Ok(self.flops(resolution)? as f64 / 1e9)
    }

    /// Number of learnable parameters in convolution and linear layers (batch-norm
    /// parameters excluded; they are a rounding error at this scale).
    pub fn param_count(&self) -> u64 {
        let mut total = 0u64;
        // Parameters do not depend on resolution; walk at a generous resolution so the
        // shape propagation cannot fail.
        let linear =
            self.walk(256, |layer, _| total += layer.params.weight_count() as u64).unwrap_or(0);
        // Linear-layer parameter count equals its MAC count at batch 1 (one MAC per weight).
        total + linear
    }

    /// Spatial extent of the feature map entering global average pooling at a resolution.
    ///
    /// # Errors
    /// Returns an error if the resolution is too small for the architecture.
    pub fn final_spatial(&self, resolution: usize) -> Result<usize> {
        let mut spatial = resolution;
        self.walk(resolution, |_, spatial_after| spatial = spatial_after)?;
        Ok(spatial)
    }

    /// Internal shape-propagation walker. Calls `visit(conv_layer, spatial_after)` for
    /// every convolution and returns the total linear-layer FLOPs.
    fn walk<F: FnMut(ConvLayerShape, usize)>(
        &self,
        resolution: usize,
        mut visit: F,
    ) -> Result<u64> {
        if resolution == 0 {
            return Err(ModelError::ResolutionTooSmall { resolution, model: self.kind.name() });
        }
        let mut spatial = resolution;
        let mut channels = 3usize;
        let mut linear_flops = 0u64;

        let emit = |params: Conv2dParams,
                    channels: &mut usize,
                    spatial: &mut usize,
                    visit: &mut F|
         -> Result<()> {
            let input = Shape::chw(*channels, *spatial, *spatial);
            let out = params.output_shape(input).map_err(|_| ModelError::ResolutionTooSmall {
                resolution,
                model: self.kind.name(),
            })?;
            visit(ConvLayerShape { params, input }, out.h);
            *channels = out.c;
            *spatial = out.h;
            Ok(())
        };

        for block in &self.blocks {
            match *block {
                BlockSpec::ConvBnAct { params, .. } => {
                    emit(params, &mut channels, &mut spatial, &mut visit)?;
                }
                BlockSpec::MaxPool(pool) => {
                    let out = pool.output_shape(Shape::chw(channels, spatial, spatial)).map_err(
                        |_| ModelError::ResolutionTooSmall { resolution, model: self.kind.name() },
                    )?;
                    spatial = out.h;
                }
                BlockSpec::BasicBlock { in_ch, out_ch, stride } => {
                    debug_assert_eq!(in_ch, channels, "block wiring mismatch");
                    let mut ch = channels;
                    let mut sp = spatial;
                    emit(
                        Conv2dParams::new(in_ch, out_ch, 3, stride, 1),
                        &mut ch,
                        &mut sp,
                        &mut visit,
                    )?;
                    emit(Conv2dParams::new(out_ch, out_ch, 3, 1, 1), &mut ch, &mut sp, &mut visit)?;
                    if stride != 1 || in_ch != out_ch {
                        let mut dc = channels;
                        let mut ds = spatial;
                        emit(
                            Conv2dParams::new(in_ch, out_ch, 1, stride, 0),
                            &mut dc,
                            &mut ds,
                            &mut visit,
                        )?;
                    }
                    channels = ch;
                    spatial = sp;
                }
                BlockSpec::Bottleneck { in_ch, mid_ch, out_ch, stride } => {
                    debug_assert_eq!(in_ch, channels, "block wiring mismatch");
                    let mut ch = channels;
                    let mut sp = spatial;
                    emit(Conv2dParams::new(in_ch, mid_ch, 1, 1, 0), &mut ch, &mut sp, &mut visit)?;
                    emit(
                        Conv2dParams::new(mid_ch, mid_ch, 3, stride, 1),
                        &mut ch,
                        &mut sp,
                        &mut visit,
                    )?;
                    emit(Conv2dParams::new(mid_ch, out_ch, 1, 1, 0), &mut ch, &mut sp, &mut visit)?;
                    if stride != 1 || in_ch != out_ch {
                        let mut dc = channels;
                        let mut ds = spatial;
                        emit(
                            Conv2dParams::new(in_ch, out_ch, 1, stride, 0),
                            &mut dc,
                            &mut ds,
                            &mut visit,
                        )?;
                    }
                    channels = ch;
                    spatial = sp;
                }
                BlockSpec::InvertedResidual { in_ch, out_ch, stride, expand } => {
                    debug_assert_eq!(in_ch, channels, "block wiring mismatch");
                    let hidden = in_ch * expand;
                    let mut ch = channels;
                    let mut sp = spatial;
                    if expand != 1 {
                        emit(
                            Conv2dParams::new(in_ch, hidden, 1, 1, 0),
                            &mut ch,
                            &mut sp,
                            &mut visit,
                        )?;
                    }
                    emit(
                        Conv2dParams::depthwise(hidden, 3, stride, 1),
                        &mut ch,
                        &mut sp,
                        &mut visit,
                    )?;
                    emit(Conv2dParams::new(hidden, out_ch, 1, 1, 0), &mut ch, &mut sp, &mut visit)?;
                    channels = ch;
                    spatial = sp;
                }
                BlockSpec::GlobalAvgPool => {
                    spatial = 1;
                }
                BlockSpec::Classifier { in_features, num_classes } => {
                    debug_assert_eq!(in_features, channels, "classifier wiring mismatch");
                    linear_flops += (in_features as u64) * (num_classes as u64);
                }
            }
        }
        Ok(linear_flops)
    }
}

/// Builds the ResNet-18 architecture (He et al., 2016) for `num_classes` outputs.
pub fn resnet18_arch(num_classes: usize) -> ArchSpec {
    let mut blocks = vec![
        BlockSpec::ConvBnAct { params: Conv2dParams::new(3, 64, 7, 2, 3), act: Activation::Relu },
        BlockSpec::MaxPool(Pool2dParams::new(3, 2, 1)),
    ];
    let stage_channels = [64usize, 128, 256, 512];
    let mut in_ch = 64usize;
    for (stage, &out_ch) in stage_channels.iter().enumerate() {
        for block in 0..2 {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            blocks.push(BlockSpec::BasicBlock { in_ch, out_ch, stride });
            in_ch = out_ch;
        }
    }
    blocks.push(BlockSpec::GlobalAvgPool);
    blocks.push(BlockSpec::Classifier { in_features: 512, num_classes });
    ArchSpec { kind: ModelKind::ResNet18, blocks, num_classes }
}

/// Builds the ResNet-50 architecture for `num_classes` outputs.
pub fn resnet50_arch(num_classes: usize) -> ArchSpec {
    let mut blocks = vec![
        BlockSpec::ConvBnAct { params: Conv2dParams::new(3, 64, 7, 2, 3), act: Activation::Relu },
        BlockSpec::MaxPool(Pool2dParams::new(3, 2, 1)),
    ];
    let stage_defs = [(64usize, 256usize, 3usize), (128, 512, 4), (256, 1024, 6), (512, 2048, 3)];
    let mut in_ch = 64usize;
    for (stage, &(mid_ch, out_ch, count)) in stage_defs.iter().enumerate() {
        for block in 0..count {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            blocks.push(BlockSpec::Bottleneck { in_ch, mid_ch, out_ch, stride });
            in_ch = out_ch;
        }
    }
    blocks.push(BlockSpec::GlobalAvgPool);
    blocks.push(BlockSpec::Classifier { in_features: 2048, num_classes });
    ArchSpec { kind: ModelKind::ResNet50, blocks, num_classes }
}

/// Builds the MobileNetV2 architecture (width multiplier 1.0) for `num_classes` outputs.
pub fn mobilenet_v2_arch(num_classes: usize) -> ArchSpec {
    let mut blocks = vec![BlockSpec::ConvBnAct {
        params: Conv2dParams::new(3, 32, 3, 2, 1),
        act: Activation::Relu6,
    }];
    // (expand, out_channels, repeats, stride) per the MobileNetV2 paper.
    let settings: [(usize, usize, usize, usize); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    let mut in_ch = 32usize;
    for &(expand, out_ch, repeats, stride) in &settings {
        for i in 0..repeats {
            let s = if i == 0 { stride } else { 1 };
            blocks.push(BlockSpec::InvertedResidual { in_ch, out_ch, stride: s, expand });
            in_ch = out_ch;
        }
    }
    blocks.push(BlockSpec::ConvBnAct {
        params: Conv2dParams::new(320, 1280, 1, 1, 0),
        act: Activation::Relu6,
    });
    blocks.push(BlockSpec::GlobalAvgPool);
    blocks.push(BlockSpec::Classifier { in_features: 1280, num_classes });
    ArchSpec { kind: ModelKind::MobileNetV2, blocks, num_classes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet18_flops_match_paper_table1() {
        // Paper Table I: ResNet-18 GFLOPs at 112..448 = 0.5, 1.1, 1.8, 2.9, 4.2, 5.8, 7.3.
        let arch = resnet18_arch(1000);
        let expected = [
            (112usize, 0.5f64),
            (168, 1.1),
            (224, 1.8),
            (280, 2.9),
            (336, 4.2),
            (392, 5.8),
            (448, 7.3),
        ];
        for (res, gflops) in expected {
            let got = arch.gflops(res).unwrap();
            let rel = (got - gflops).abs() / gflops;
            assert!(rel < 0.15, "ResNet-18@{res}: expected ~{gflops}, got {got:.2}");
        }
    }

    #[test]
    fn resnet50_flops_scale() {
        let arch = resnet50_arch(1000);
        let at224 = arch.gflops(224).unwrap();
        // Literature/paper value ≈ 4.1 GFLOPs.
        assert!((3.6..=4.6).contains(&at224), "ResNet-50@224 = {at224:.2}");
        // Near-quadratic scaling with resolution.
        let at448 = arch.gflops(448).unwrap();
        assert!(at448 / at224 > 3.5 && at448 / at224 < 4.5);
    }

    #[test]
    fn mobilenet_flops_match_paper() {
        let arch = mobilenet_v2_arch(1000);
        // Paper §VII-b: MobileNetV2 at 112×112 ≈ 0.08 GFLOPs; at 224×224 ≈ 0.3 GFLOPs.
        let at112 = arch.gflops(112).unwrap();
        let at224 = arch.gflops(224).unwrap();
        assert!((0.05..=0.12).contains(&at112), "MobileNetV2@112 = {at112:.3}");
        assert!((0.25..=0.40).contains(&at224), "MobileNetV2@224 = {at224:.3}");
    }

    #[test]
    fn param_counts_are_plausible() {
        // ResNet-18 ≈ 11.7 M, ResNet-50 ≈ 25.6 M, MobileNetV2 ≈ 3.4 M (conv+fc only).
        let r18 = resnet18_arch(1000).param_count() as f64 / 1e6;
        let r50 = resnet50_arch(1000).param_count() as f64 / 1e6;
        let mb2 = mobilenet_v2_arch(1000).param_count() as f64 / 1e6;
        assert!((10.0..=13.0).contains(&r18), "ResNet-18 params {r18:.1}M");
        assert!((22.0..=28.0).contains(&r50), "ResNet-50 params {r50:.1}M");
        assert!((2.5..=4.5).contains(&mb2), "MobileNetV2 params {mb2:.1}M");
    }

    #[test]
    fn conv_layer_enumeration() {
        let arch = resnet18_arch(10);
        let layers = arch.conv_layers(224).unwrap();
        // 1 stem + 8 basic blocks × 2 convs + 3 downsample projections = 20.
        assert_eq!(layers.len(), 20);
        assert_eq!(layers[0].input, Shape::chw(3, 224, 224));
        assert_eq!(layers[0].params.out_channels, 64);
        // Total FLOPs from layers matches flops() minus the classifier.
        let conv_flops: u64 = layers.iter().map(ConvLayerShape::flops).sum();
        let classifier_flops = 512 * 10;
        assert_eq!(arch.flops(224).unwrap(), conv_flops + classifier_flops);
    }

    #[test]
    fn resnet50_layer_count() {
        let arch = resnet50_arch(1000);
        let layers = arch.conv_layers(224).unwrap();
        // 1 stem + 16 bottlenecks × 3 + 4 downsample projections = 53.
        assert_eq!(layers.len(), 53);
    }

    #[test]
    fn final_spatial_extent() {
        let arch = resnet18_arch(1000);
        // 224 → stem 112 → pool 56 → stages 56/28/14/7.
        assert_eq!(arch.final_spatial(224).unwrap(), 7);
        assert_eq!(arch.final_spatial(112).unwrap(), 4);
        let layers = arch.conv_layers(224).unwrap();
        // Last conv layer input spatial extent is 7 at 224.
        assert_eq!(layers.last().unwrap().input.h, 7);
        let layers112 = arch.conv_layers(112).unwrap();
        assert_eq!(layers112.last().unwrap().input.h, 4);
    }

    #[test]
    fn flops_grow_monotonically_with_resolution() {
        for kind in ModelKind::ALL {
            let arch = kind.arch(100);
            let mut prev = 0;
            for res in [64usize, 112, 168, 224, 280, 336] {
                let f = arch.flops(res).unwrap();
                assert!(f > prev, "{kind} flops must grow with resolution");
                prev = f;
            }
        }
    }

    #[test]
    fn too_small_resolutions_error() {
        let arch = resnet50_arch(10);
        assert!(arch.flops(0).is_err());
        // Thanks to padding and global pooling the architectures degrade gracefully all
        // the way down to 1×1 inputs instead of erroring.
        assert!(arch.conv_layers(1).is_ok());
    }

    #[test]
    fn model_kind_metadata() {
        assert_eq!(ModelKind::ResNet18.name(), "ResNet-18");
        assert_eq!(ModelKind::ResNet50.to_string(), "ResNet-50");
        assert_eq!(ModelKind::MobileNetV2.arch(42).num_classes, 42);
        assert_eq!(ModelKind::ALL.len(), 3);
    }
}
