//! Network-level acceptance suite for cache-resident layer chaining: chained
//! conv→conv execution inside basic/bottleneck blocks must be bitwise
//! identical to the unchained reference, stay bitwise stable while the chain
//! decision itself flips with the thread count, and serve warm (and
//! plan-reserved first) forwards without a single tracked heap allocation at
//! the paper's 224² and 448² operating points.
//!
//! Runs in CI's `RESCNN_THREADS={1,2,4}` determinism matrix alongside
//! `prepacked_forward`.

use std::sync::{Mutex, MutexGuard};

use rescnn_models::{ArchSpec, BlockSpec, ModelKind, Network};
use rescnn_tensor::{
    scratch, set_chain_mode, set_num_threads, ActivationArena, ChainMode, ConvAlgo, EngineContext,
    Shape, Tensor,
};

/// Serializes tests in this binary: they flip the process-wide chain mode and
/// thread count and observe the global allocation counter.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Restores [`ChainMode::Auto`] when dropped, so a failing assertion cannot
/// leak a forced mode into later tests.
struct ChainGuard;

impl ChainGuard {
    fn force() -> Self {
        set_chain_mode(ChainMode::Force);
        ChainGuard
    }
    fn off() -> Self {
        set_chain_mode(ChainMode::Off);
        ChainGuard
    }
}

impl Drop for ChainGuard {
    fn drop(&mut self) {
        set_chain_mode(ChainMode::Auto);
    }
}

/// A thin residual network exercising both chain shapes — a basic block
/// (3×3 → 3×3, both Winograd-eligible) and a stride-1 bottleneck
/// (3×3 → 1×1 pointwise drain) — with channel counts small enough for
/// debug-mode runs at 448².
fn chain_arch() -> ArchSpec {
    ArchSpec {
        kind: ModelKind::ResNet18,
        blocks: vec![
            BlockSpec::BasicBlock { in_ch: 3, out_ch: 8, stride: 1 },
            BlockSpec::Bottleneck { in_ch: 8, mid_ch: 4, out_ch: 8, stride: 1 },
            BlockSpec::GlobalAvgPool,
            BlockSpec::Classifier { in_features: 8, num_classes: 4 },
        ],
        num_classes: 4,
    }
}

#[test]
fn chained_forward_matches_reference_bitwise() {
    let _guard = lock();
    let net = Network::from_arch(&chain_arch(), 13);
    let input = Tensor::random_uniform(Shape::chw(3, 56, 56), 1.0, 41);
    for algo in [ConvAlgo::Winograd, ConvAlgo::WinogradF4] {
        let _chain = ChainGuard::force();
        let context = EngineContext::new().with_algo(algo);
        let chained = context.scope(|| net.forward(&input).unwrap());
        // The reference path never chains: layer-at-a-time, PR-4-era kernels.
        let reference = context.scope(|| net.forward_reference(&input).unwrap());
        assert_eq!(
            chained.as_slice(),
            reference.as_slice(),
            "chained forward under {algo} diverged from the unchained reference"
        );
    }
}

#[test]
fn chain_decision_reaches_the_arena_planner() {
    let _guard = lock();
    let net = Network::from_arch(&chain_arch(), 13);
    let shape = Shape::chw(3, 56, 56);
    let context = EngineContext::new().with_algo(ConvAlgo::Winograd);
    let forced = {
        let _chain = ChainGuard::force();
        context.scope(|| net.arena_plan(shape).unwrap())
    };
    let unchained = {
        let _chain = ChainGuard::off();
        context.scope(|| net.arena_plan(shape).unwrap())
    };
    // The chained plan stages ring bands instead of full mid activations; if
    // the two plans were identical, chaining never engaged and every parity
    // assertion in this suite would be vacuous.
    assert_ne!(
        forced.buffer_elems, unchained.buffer_elems,
        "forcing the chain mode must change the planned buffer set"
    );
}

/// The chain decision flips with the thread count under [`ChainMode::Auto`]
/// (tile chaining is a single-core locality play), but the bits must not:
/// chained and unchained execution share every FLOP and its order.
#[test]
fn auto_mode_is_bitwise_identical_across_thread_counts() {
    let _guard = lock();
    let net = Network::from_arch(&chain_arch(), 29);
    let input = Tensor::random_uniform(Shape::chw(3, 48, 48), 1.0, 3);
    let context = EngineContext::new().with_algo(ConvAlgo::Winograd);
    let mut outputs = Vec::new();
    for threads in [1usize, 2, 4] {
        set_num_threads(threads);
        outputs.push(context.scope(|| net.forward(&input).unwrap()));
    }
    set_num_threads(1);
    assert_eq!(outputs[0].as_slice(), outputs[1].as_slice(), "1 vs 2 threads must agree bitwise");
    assert_eq!(outputs[0].as_slice(), outputs[2].as_slice(), "1 vs 4 threads must agree bitwise");
}

/// The allocation-regression satellite: at both paper operating points the
/// planner's reservation covers chained execution exactly — the first forward
/// from a plan-reserved arena and every warm forward after it perform zero
/// tracked heap allocations.
#[test]
fn chained_forwards_stay_allocation_free_at_224_and_448() {
    let _guard = lock();
    let _chain = ChainGuard::force();
    let net = Network::from_arch(&chain_arch(), 7);
    let context = EngineContext::new().with_algo(ConvAlgo::Winograd);
    for res in [224usize, 448] {
        let shape = Shape::chw(3, res, res);
        let input = Tensor::random_uniform(shape, 1.0, res as u64);

        // Warm the kernel scratch pool and lazy per-layer caches with a
        // throwaway arena, isolating the planned activation/band buffers.
        let mut throwaway = ActivationArena::new();
        context.scope(|| net.forward_with_arena(&input, &mut throwaway).unwrap());
        drop(throwaway);

        let plan = context.scope(|| net.arena_plan(shape).unwrap());
        let mut arena = ActivationArena::new();
        plan.reserve(&mut arena);
        let reserved = scratch::heap_allocations();
        context.scope(|| net.forward_with_arena(&input, &mut arena).unwrap());
        assert_eq!(
            scratch::heap_allocations() - reserved,
            0,
            "plan-reserved chained forward at {res}² must not allocate"
        );

        let warm = scratch::heap_allocations();
        context.scope(|| net.forward_with_arena(&input, &mut arena).unwrap());
        assert_eq!(
            scratch::heap_allocations() - warm,
            0,
            "warm chained forward at {res}² must not allocate"
        );
    }
}
