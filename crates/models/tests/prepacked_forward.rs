//! Network-level parity and allocation-regression suite for the prepared
//! execution stage (prepacked weights + fused epilogues + activation arena).
//!
//! Runs in CI's `RESCNN_THREADS={1,2,4}` determinism matrix: the prepared path
//! must be bitwise identical to the PR-4-era reference execution at every
//! thread count, and warm forwards must perform zero heap allocations
//! (`rescnn_tensor::scratch::heap_allocations` covers both the kernel scratch
//! pool and the activation arena).

use std::sync::{Mutex, MutexGuard};

use rescnn_models::{ModelKind, Network};
use rescnn_tensor::{scratch, ActivationArena, ConvAlgo, EngineContext, Shape, Tensor};

/// Serializes tests in this binary: they observe the process-wide allocation
/// counter, which any concurrent engine work would advance.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[test]
fn prepared_forward_matches_reference_across_families() {
    let _guard = lock();
    for (kind, res) in
        [(ModelKind::ResNet18, 56usize), (ModelKind::ResNet50, 48), (ModelKind::MobileNetV2, 48)]
    {
        let net = Network::new(kind, 6, 9);
        let input = Tensor::random_uniform(Shape::chw(3, res, res), 1.0, res as u64);
        let fast = net.forward(&input).unwrap();
        let reference = net.forward_reference(&input).unwrap();
        assert_eq!(
            fast.as_slice(),
            reference.as_slice(),
            "{kind} prepared forward diverged from reference at {res}²"
        );
    }
}

#[test]
fn prepared_forward_matches_reference_under_winograd_dispatch() {
    let _guard = lock();
    // Forcing Winograd routes every dense stride-1 3×3 layer through the fused
    // (bias + residual + activation) Winograd output transform in the prepared
    // path, vs the PR-4 fused-bias-activation + separate add_relu composition
    // in the reference. Both must agree bitwise.
    let net = Network::new(ModelKind::ResNet18, 4, 17);
    let input = Tensor::random_uniform(Shape::chw(3, 56, 56), 1.0, 23);
    let context = EngineContext::new().with_algo(ConvAlgo::Winograd);
    let fast = context.scope(|| net.forward(&input).unwrap());
    let reference = context.scope(|| net.forward_reference(&input).unwrap());
    assert_eq!(fast.as_slice(), reference.as_slice());
}

/// Warm forwards must not allocate: the kernel scratch pool and the activation
/// arena both reach steady state after warm-up, leaving only the returned
/// logits vector per request (a plain `Vec`, not pool-tracked).
#[test]
fn warm_forwards_perform_zero_tracked_allocations() {
    let _guard = lock();
    let net = Network::new(ModelKind::ResNet18, 5, 3);
    let input = Tensor::random_uniform(Shape::chw(3, 64, 64), 1.0, 7);
    for _ in 0..5 {
        net.forward(&input).unwrap();
    }
    let warm = scratch::heap_allocations();
    for _ in 0..5 {
        net.forward(&input).unwrap();
    }
    assert_eq!(
        scratch::heap_allocations() - warm,
        0,
        "steady-state forwards must not allocate scratch or activation buffers"
    );
}

/// Batched forwards reach the same steady state on pool workers (their
/// thread-local arenas persist across dispatches).
#[test]
fn warm_batched_forwards_perform_zero_tracked_allocations() {
    let _guard = lock();
    let net = Network::new(ModelKind::ResNet18, 4, 5);
    let inputs: Vec<Tensor> =
        (0..8).map(|i| Tensor::random_uniform(Shape::chw(3, 48, 48), 1.0, i)).collect();
    for _ in 0..5 {
        net.forward_batch(&inputs).unwrap();
    }
    let warm = scratch::heap_allocations();
    for _ in 0..5 {
        net.forward_batch(&inputs).unwrap();
    }
    assert_eq!(
        scratch::heap_allocations() - warm,
        0,
        "warm homogeneous batches must not allocate on any worker"
    );
}

/// The arena planner's reservation covers a real forward exactly: after
/// reserving from the plan, even the *first* forward at that resolution
/// performs zero tracked allocations.
#[test]
fn arena_plan_reservation_makes_first_forward_allocation_free() {
    let _guard = lock();
    let net = Network::new(ModelKind::ResNet50, 4, 11);
    let shape = Shape::chw(3, 56, 56);
    let input = Tensor::random_uniform(shape, 1.0, 31);

    // Warm the kernel scratch pool and the lazy per-layer caches with a
    // throwaway arena, so the measurement isolates the *activation* buffers.
    let mut throwaway = ActivationArena::new();
    net.forward_with_arena(&input, &mut throwaway).unwrap();
    drop(throwaway);

    let plan = net.arena_plan(shape).unwrap();
    assert!(!plan.buffer_elems.is_empty());
    let mut arena = ActivationArena::new();
    plan.reserve(&mut arena);
    let reserved = scratch::heap_allocations();
    let out = net.forward_with_arena(&input, &mut arena).unwrap();
    assert_eq!(
        scratch::heap_allocations() - reserved,
        0,
        "a plan-reserved arena must serve the first forward without allocating"
    );
    // And the planned execution is still the same bits.
    let reference = net.forward_reference(&input).unwrap();
    assert_eq!(out.as_slice(), reference.as_slice());
}

/// Mixed-resolution serving: one arena grows to the per-bucket maxima and then
/// serves every bucket allocation-free.
#[test]
fn mixed_resolution_buckets_reach_steady_state() {
    let _guard = lock();
    let net = Network::new(ModelKind::ResNet18, 3, 2);
    let mut arena = ActivationArena::new();
    let inputs: Vec<Tensor> = [32usize, 48, 64, 48, 32]
        .iter()
        .map(|&res| Tensor::random_uniform(Shape::chw(3, res, res), 1.0, res as u64))
        .collect();
    for input in &inputs {
        net.forward_with_arena(input, &mut arena).unwrap();
    }
    let warm = scratch::heap_allocations();
    for input in &inputs {
        net.forward_with_arena(input, &mut arena).unwrap();
    }
    assert_eq!(scratch::heap_allocations() - warm, 0, "warm mixed-resolution serving allocated");
    assert!(arena.resident_bytes() > 0);
}

/// The accounted live-byte high-water mark of a real forward never exceeds
/// the arena planner's peak-live figure — the upper bound the serving core's
/// memory-budget admission (`SloOptions::memory_budget_bytes`) relies on.
#[test]
fn measured_peak_live_bytes_never_exceed_the_planned_peak() {
    let _guard = lock();
    for (kind, hw) in [(ModelKind::ResNet18, 56usize), (ModelKind::MobileNetV2, 48)] {
        let net = Network::new(kind, 4, 11);
        let shape = Shape::chw(3, hw, hw);
        let input = Tensor::random_uniform(shape, 1.0, 7);
        let planned = net.arena_plan(shape).unwrap().peak_live_bytes;
        let mut arena = ActivationArena::new();
        net.forward_with_arena(&input, &mut arena).unwrap();
        let measured = arena.peak_live_bytes();
        assert!(measured > 0, "{kind}: a forward must account live activation bytes");
        assert!(
            measured <= planned,
            "{kind} at {hw}²: measured peak {measured} exceeds planned peak {planned}"
        );
    }
}
